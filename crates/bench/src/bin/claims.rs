//! Regenerates the headline claims of §I / §IV-B1.

use aging_cache::experiment::claims;
use repro_bench::{context, default_config};

fn main() {
    let cfg = default_config();
    let ctx = context();
    match claims(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("claims failed: {e}");
            std::process::exit(1);
        }
    }
}
