//! The cost of the `update` signal (paper §III-A3).
//!
//! Every update flushes the cache, so updating too often would hurt the
//! miss rate. The paper argues the cost is nil because updates are needed
//! only at aging timescales (daily) while flushes already happen at OS
//! timescales (context switches). This binary sweeps *absurdly* aggressive
//! update periods to show how far the claim stretches.

use aging_cache::arch::{PartitionedCache, UpdateSchedule};
use aging_cache::policy::PolicyKind;
use aging_cache::report::Table;
use repro_bench::{context, default_config};
use trace_synth::suite;

fn main() {
    let cfg = default_config();
    let _ctx = context();
    let geom = cfg.geometry().expect("geometry");

    let mut t = Table::new(
        "Miss-rate cost of update frequency (16 kB, M = 4, Probing)",
        vec![
            "update period (cycles)".into(),
            "updates".into(),
            "miss rate".into(),
            "delta vs never".into(),
        ],
    );
    let profile = suite::by_name("ispell").expect("in suite");
    let baseline = PartitionedCache::new(geom, PolicyKind::Probing)
        .expect("arch")
        .simulate(
            profile.trace(cfg.seed).take(cfg.trace_cycles as usize),
            UpdateSchedule::Never,
        )
        .expect("simulation");
    t.push_row(vec![
        "never".into(),
        "0".into(),
        format!("{:.4}", baseline.miss_rate()),
        "-".into(),
    ]);
    for period in [320_000u64, 80_000, 20_000, 5_000] {
        let out = PartitionedCache::new(geom, PolicyKind::Probing)
            .expect("arch")
            .simulate(
                profile.trace(cfg.seed).take(cfg.trace_cycles as usize),
                UpdateSchedule::EveryCycles(period),
            )
            .expect("simulation");
        t.push_row(vec![
            period.to_string(),
            out.updates.to_string(),
            format!("{:.4}", out.miss_rate()),
            format!("{:+.4}", out.miss_rate() - baseline.miss_rate()),
        ]);
    }
    t.push_note(
        "real updates are ~daily (~1e14 cycles apart): even the 5k-cycle torture row \
         bounds the refill cost at one cache of misses per flush",
    );
    println!("{t}");
}
