//! §IV-B2: Probing and Scrambling are "de facto identical".

use aging_cache::experiment::policy_equivalence;
use repro_bench::{context, default_config};

fn main() {
    let cfg = default_config();
    let ctx = context();
    match policy_equivalence(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => {
            eprintln!("policy_equivalence failed: {e}");
            std::process::exit(1);
        }
    }
}
