//! §IV-B2: Probing and Scrambling are "de facto identical".
//! A `StudySpec` preset over the generic grid runner; pass `--json` for
//! the raw report.

use aging_cache::{presets, views};
use repro_bench::{default_config, run_preset, session};

fn main() {
    run_preset(
        presets::policy_equivalence(&default_config()),
        &session(),
        views::policy_equivalence,
    );
}
