//! Runs the complete reproduction: Tables I–IV, the headline claims, the
//! RNG-error study and the policy-equivalence check, in paper order.
//!
//! `cargo run --release -p repro-bench --bin repro_all | tee repro.txt`

use aging_cache::experiment::{
    claims, policy_equivalence, rng_error, table1, table2, table3, table4,
};
use repro_bench::{context, default_config, section};

fn main() {
    let cfg = default_config();
    let ctx = context();

    section("Table I - idleness distribution (16 kB, 16 B lines, M = 4)");
    match table1(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("table1 failed: {e}"),
    }

    section("Table II - Esav / LT0 / LT vs cache size");
    match table2(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("table2 failed: {e}"),
    }

    section("Table III - Esav / LT vs line size");
    match table3(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("table3 failed: {e}"),
    }

    section("Table IV - idleness / LT vs cache size and banks");
    match table4(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("table4 failed: {e}"),
    }

    section("Headline claims (Sec. IV-B1)");
    match claims(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("claims failed: {e}"),
    }

    section("RNG repetition error (Sec. IV-B2)");
    match rng_error(2, &[16, 64, 256, 1024, 4096, 16384, 65536]) {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("rng_error failed: {e}"),
    }

    section("Probing vs Scrambling (Sec. IV-B2)");
    match policy_equivalence(&cfg, &ctx) {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("policy_equivalence failed: {e}"),
    }
}
