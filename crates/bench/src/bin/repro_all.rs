//! Runs the complete reproduction: Tables I–IV, the headline claims, the
//! RNG-error study and the policy-equivalence check, in paper order —
//! every table a `StudySpec` preset over the generic grid runner.
//!
//! `cargo run --release -p repro-bench --bin repro_all | tee repro.txt`

use aging_cache::experiment::rng_error;
use aging_cache::{presets, views};
use repro_bench::{context, default_config, run_preset, section};

fn main() {
    let cfg = default_config();
    let ctx = context();

    section("Table I - idleness distribution (16 kB, 16 B lines, M = 4)");
    run_preset(presets::table1(&cfg), &ctx, views::table1);

    section("Table II - Esav / LT0 / LT vs cache size");
    run_preset(presets::table2(&cfg), &ctx, views::table2);

    section("Table III - Esav / LT vs line size");
    run_preset(presets::table3(&cfg), &ctx, views::table3);

    section("Table IV - idleness / LT vs cache size and banks");
    run_preset(presets::table4(&cfg), &ctx, views::table4);

    section("Headline claims (Sec. IV-B1)");
    run_preset(presets::claims(&cfg), &ctx, views::claims);

    section("RNG repetition error (Sec. IV-B2)");
    match rng_error(2, &[16, 64, 256, 1024, 4096, 16384, 65536]) {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("rng_error failed: {e}"),
    }

    section("Probing vs Scrambling (Sec. IV-B2)");
    run_preset(
        presets::policy_equivalence(&cfg),
        &ctx,
        views::policy_equivalence,
    );
}
