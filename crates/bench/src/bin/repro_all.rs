//! Runs the complete reproduction: Tables I–IV, the headline claims, the
//! RNG-error study and the policy-equivalence check, in paper order —
//! every table a `StudySpec` preset over the generic grid runner.
//!
//! All presets share one [`StudySession`], so its session-scoped
//! simulation memo deduplicates the trace simulations the tables have
//! in common (Table II's 16 kB column is Table I's grid; Table IV's
//! 4-bank row is Table II's; the claims re-run Table II whole; the
//! policy-equivalence grid re-uses Table I's simulations under a
//! second policy). The stdout report is byte-identical to the
//! pre-session runner; the sharing is asserted — strictly fewer
//! simulations than scenarios — and summarized on stderr.
//!
//! `cargo run --release -p repro-bench --bin repro_all | tee repro.txt`
//!
//! [`StudySession`]: aging_cache::session::StudySession

use aging_cache::experiment::rng_error;
use aging_cache::{presets, views};
use repro_bench::{default_config, run_preset, section, session};

fn main() {
    let cfg = default_config();
    let session = session();

    section("Table I - idleness distribution (16 kB, 16 B lines, M = 4)");
    run_preset(presets::table1(&cfg), &session, views::table1);

    section("Table II - Esav / LT0 / LT vs cache size");
    run_preset(presets::table2(&cfg), &session, views::table2);

    section("Table III - Esav / LT vs line size");
    run_preset(presets::table3(&cfg), &session, views::table3);

    section("Table IV - idleness / LT vs cache size and banks");
    run_preset(presets::table4(&cfg), &session, views::table4);

    section("Headline claims (Sec. IV-B1)");
    run_preset(presets::claims(&cfg), &session, views::claims);

    section("RNG repetition error (Sec. IV-B2)");
    match rng_error(2, &[16, 64, 256, 1024, 4096, 16384, 65536]) {
        Ok(t) => println!("{t}"),
        Err(e) => eprintln!("rng_error failed: {e}"),
    }

    section("Probing vs Scrambling (Sec. IV-B2)");
    run_preset(
        presets::policy_equivalence(&cfg),
        &session,
        views::policy_equivalence,
    );

    // The whole point of sharing one session: overlapping table grids
    // must not re-simulate their common points.
    let stats = session.stats();
    assert!(
        stats.simulations < stats.scenarios,
        "session memo failed to share work: {} simulations for {} scenarios",
        stats.simulations,
        stats.scenarios
    );
    eprintln!(
        "[session] scenarios: {}, simulations: {} ({} shared via the session memo)",
        stats.scenarios, stats.simulations, stats.sim_memo_hits
    );
}
