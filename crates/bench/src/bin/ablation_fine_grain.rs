//! Ablation: what bank granularity gives up vs ref. \[7\]'s line-level
//! dynamic indexing.
//!
//! Line-granularity schemes achieve ideal idleness (each line sleeps
//! through its own gaps) but must modify the SRAM internals; the paper's
//! bank-level architecture works with standard memory-compiler blocks.
//! This binary prints both lifetimes per benchmark — the "price of
//! standard blocks".

use aging_cache::arch::{PartitionedCache, UpdateSchedule};
use aging_cache::fine_grain::FineGrainStudy;
use aging_cache::policy::PolicyKind;
use aging_cache::report::{years, Table};
use repro_bench::{context, default_config};
use trace_synth::suite;

fn main() {
    let cfg = default_config();
    let ctx = context();
    let geom = cfg.geometry().expect("geometry");
    let study = FineGrainStudy::new(geom).expect("study");

    let mut t = Table::new(
        "Bank-level (this paper) vs line-level (ref [7]) lifetimes, 16 kB",
        vec![
            "bench".into(),
            "bank sleep %".into(),
            "line sleep %".into(),
            "LT bank (M=4)".into(),
            "LT line (ideal)".into(),
            "gap %".into(),
        ],
    );
    for (i, p) in suite::mediabench().iter().enumerate() {
        let seed = cfg.seed + i as u64;
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).expect("arch");
        let out = arch
            .simulate(
                p.trace(seed).take(cfg.trace_cycles as usize),
                UpdateSchedule::Never,
            )
            .expect("simulation");
        let bank_lt = ctx
            .aging
            .cache_lifetime(&out.sleep_fraction_all(), p.p0(), PolicyKind::Probing)
            .expect("bank lifetime");
        let fine = study
            .measure(p, cfg.trace_cycles, seed)
            .expect("fine-grain measurement");
        let line_lt = study
            .ideal_lifetime(&ctx.aging, &fine, p.p0())
            .expect("ideal lifetime");
        t.push_row(vec![
            p.name().to_string(),
            format!("{:.1}", 100.0 * out.avg_sleep_fraction()),
            format!("{:.1}", 100.0 * fine.avg_sleep),
            years(bank_lt),
            years(line_lt),
            format!("{:+.0}", 100.0 * (line_lt - bank_lt) / bank_lt),
        ]);
    }
    t.push_note(
        "line granularity is the idleness upper bound; the paper accepts the gap \
         to keep standard memory-compiler blocks (no SRAM internals touched)",
    );
    println!("{t}");
}
