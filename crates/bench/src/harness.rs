//! A minimal wall-clock benchmark harness (offline stand-in for
//! criterion).
//!
//! The workspace builds without network access, so the benches cannot
//! depend on criterion. This harness keeps their structure — named
//! groups of closures, warm-up then measurement — and reports mean and
//! best ns/iteration plus optional element throughput. Benches using it
//! declare `harness = false` in the manifest and drive it from `main`.
//!
//! Besides the human-readable tables, a bench can persist a
//! machine-readable baseline with [`write_baseline`] (e.g.
//! `BENCH_study.json` from `benches/study_exec.rs`), so the perf
//! trajectory of the hot path is tracked in artifacts instead of
//! scrollback.

use aging_cache::json::Json;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const MEASURE: Duration = Duration::from_millis(1200);
/// Warm-up time per benchmark.
const WARMUP: Duration = Duration::from_millis(300);

/// A named group of benchmarks, printed as a table as they run.
pub struct Harness {
    group: String,
}

impl Harness {
    /// Opens a group and prints its header.
    pub fn new(group: &str) -> Self {
        println!();
        println!("benchmark group: {group}");
        println!(
            "{:<32} {:>12} {:>12} {:>10} {:>14}",
            "name", "mean", "best", "iters", "throughput"
        );
        println!("{}", "-".repeat(84));
        Self {
            group: group.to_string(),
        }
    }

    /// Benchmarks a closure, discarding its result via `black_box`.
    pub fn bench<R>(&mut self, name: &str, f: impl FnMut() -> R) {
        self.run(name, None, f);
    }

    /// Benchmarks a closure that processes `elems` elements per call and
    /// reports element throughput.
    pub fn bench_throughput<R>(&mut self, name: &str, elems: u64, f: impl FnMut() -> R) {
        self.run(name, Some(elems), f);
    }

    fn run<R>(&mut self, name: &str, elems: Option<u64>, mut f: impl FnMut() -> R) {
        // Warm-up: also calibrates the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP {
            black_box(f());
            warm_iters += 1;
        }
        let est_per_iter = WARMUP.as_nanos() as f64 / warm_iters.max(1) as f64;
        // Batch size targeting ~50 timer reads over the measurement
        // window, so timer overhead stays negligible for fast closures.
        let batch = ((MEASURE.as_nanos() as f64 / est_per_iter / 50.0).ceil() as u64).max(1);

        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let mut best_per_iter = f64::INFINITY;
        while total < MEASURE {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t.elapsed();
            best_per_iter = best_per_iter.min(dt.as_nanos() as f64 / batch as f64);
            total += dt;
            iters += batch;
        }
        let mean = total.as_nanos() as f64 / iters as f64;
        let throughput = match elems {
            Some(e) => format!("{}/s", human(e as f64 * 1e9 / mean)),
            None => "-".to_string(),
        };
        println!(
            "{:<32} {:>12} {:>12} {:>10} {:>14}",
            format!("{}/{}", self.group, name),
            format!("{} ns", human(mean)),
            format!("{} ns", human(best_per_iter)),
            iters,
            throughput
        );
    }
}

/// Writes a machine-readable benchmark baseline: one flat JSON object
/// of named measurements per bench, one line per bench (JSONL), to
/// `path` (conventionally `BENCH_<name>.json` in the working
/// directory). Values emit with shortest-round-trip formatting, so
/// baselines diff cleanly.
///
/// The write **merges by bench name**: an existing line for `bench`
/// is replaced in place, other benches' lines pass through untouched
/// — so `study_exec` and `study_serve` can share one baseline file
/// without clobbering each other, whichever ran last.
///
/// # Errors
///
/// Returns the underlying I/O error when the file cannot be written.
pub fn write_baseline(path: &str, bench: &str, fields: &[(&str, f64)]) -> std::io::Result<()> {
    let mut pairs = vec![("bench", Json::Str(bench.to_string()))];
    pairs.extend(fields.iter().map(|&(k, v)| (k, Json::Num(v))));
    let line = Json::obj(pairs).emit();

    // `bench` emits first, so a prefix match identifies this bench's
    // line without parsing the rest.
    let marker = format!("{{\"bench\":\"{bench}\"");
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut lines: Vec<String> = existing
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(str::to_string)
        .collect();
    match lines.iter().position(|l| l.starts_with(&marker)) {
        Some(i) => lines[i] = line,
        None => lines.push(line),
    }
    let mut text = lines.join("\n");
    text.push('\n');
    std::fs::write(path, text)
}

/// Formats a positive quantity with 3 significant-ish digits and
/// thousands separators collapsed to k/M/G suffixes.
fn human(v: f64) -> String {
    if v >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else {
        format!("{v:.1}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_scales() {
        assert_eq!(human(12.34), "12.3");
        assert_eq!(human(1234.0), "1.23k");
        assert_eq!(human(1.234e7), "12.34M");
        assert_eq!(human(2.5e9), "2.50G");
    }

    #[test]
    fn baselines_merge_by_bench_name() {
        let path = std::env::temp_dir().join(format!("nbti-baseline-{}.json", std::process::id()));
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);

        write_baseline(path, "alpha", &[("x", 1.0)]).unwrap();
        write_baseline(path, "beta", &[("y", 2.0)]).unwrap();
        // Re-running a bench replaces its own line in place, nothing
        // else — whichever bench runs last.
        write_baseline(path, "alpha", &[("x", 3.0)]).unwrap();

        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(
            text,
            "{\"bench\":\"alpha\",\"x\":3}\n{\"bench\":\"beta\",\"y\":2}\n"
        );
        std::fs::remove_file(path).unwrap();
    }
}
