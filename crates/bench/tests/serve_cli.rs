//! End-to-end CLI smoke for the serving layer: warm a journal with
//! `study`, serve it with `study serve`, and hit it with `study
//! fetch` — the served Table II markdown must be byte-identical to
//! the CLI rendering, the exchange must simulate nothing, and a
//! token-gated shutdown must drain the server to a zero exit.

use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

fn study() -> Command {
    Command::new(env!("CARGO_BIN_EXE_study"))
}

/// The Table II headline sweep (8/16/32 kB × Probing × the full
/// suite) at the test trace horizon, as CLI flags and as the
/// equivalent serve query string.
const SPEC_FLAGS: [&str; 8] = [
    "--cache-kb",
    "8,16,32",
    "--policies",
    "probing",
    "--workloads",
    "all",
    "--trace-cycles",
    "40000",
];
const SPEC_QUERY: &str = "cache-kb=8,16,32&policies=probing&workloads=all&trace-cycles=40000";

#[test]
fn serve_answers_byte_identical_to_the_cli_and_drains_on_shutdown() {
    let dir = std::env::temp_dir().join(format!("nbti-serve-cli-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache_dir = dir.join("journal");
    let cache_dir = cache_dir.to_str().unwrap();

    // Warm the journal through the CLI; its stdout is the byte-parity
    // reference the server must reproduce.
    let run = study()
        .args(SPEC_FLAGS)
        .args(["--format", "md", "--cache-dir", cache_dir])
        .output()
        .unwrap();
    assert!(
        run.status.success(),
        "{}",
        String::from_utf8_lossy(&run.stderr)
    );
    let expected = run.stdout;
    assert!(!expected.is_empty());

    // Serve the warm journal on an OS-assigned port, discovered
    // through --addr-file (the CI recipe: no port to collide on).
    let addr_file = dir.join("addr");
    let mut server = study()
        .args(["serve", "--cache-dir", cache_dir])
        .args(["--addr", "127.0.0.1:0"])
        .args(["--addr-file", addr_file.to_str().unwrap()])
        .args(["--shutdown-token", "ci-smoke"])
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        let text = std::fs::read_to_string(&addr_file).unwrap_or_default();
        if !text.trim().is_empty() {
            break text.trim().to_string();
        }
        assert!(Instant::now() < deadline, "server never wrote --addr-file");
        std::thread::sleep(Duration::from_millis(20));
    };
    let fetch = |target: &str, extra: &[&str]| {
        study()
            .arg("fetch")
            .arg(format!("http://{addr}{target}"))
            .args(extra)
            .output()
            .unwrap()
    };

    // Served markdown == CLI stdout, byte for byte.
    let got = fetch(&format!("/render?{SPEC_QUERY}&format=md"), &[]);
    assert!(
        got.status.success(),
        "{}",
        String::from_utf8_lossy(&got.stderr)
    );
    assert_eq!(
        got.stdout, expected,
        "served bytes must match the CLI rendering"
    );

    // A grouped query over the same warm cells works too.
    let query = fetch(
        &format!("/query?{SPEC_QUERY}&metric=esav&reduce=mean&group-by=cache"),
        &[],
    );
    assert!(query.status.success());
    assert!(!query.stdout.is_empty());

    // The report JSON the server serves diffs clean against its own
    // journal.
    let report = fetch(&format!("/render?{SPEC_QUERY}&format=json"), &[]);
    assert!(report.status.success());
    let report_file = dir.join("report.json");
    std::fs::write(&report_file, &report.stdout).unwrap();
    let compare = fetch("/compare", &["--body-file", report_file.to_str().unwrap()]);
    assert!(
        compare.status.success(),
        "{}",
        String::from_utf8_lossy(&compare.stdout)
    );
    assert!(
        String::from_utf8_lossy(&compare.stdout).contains("54 scenarios matched"),
        "{}",
        String::from_utf8_lossy(&compare.stdout)
    );

    // The whole exchange replayed from the journal: zero simulations.
    let stats = fetch("/stats", &[]);
    let text = String::from_utf8(stats.stdout).unwrap();
    assert!(text.contains("\"simulations\":0"), "{text}");

    // A wrong token bounces (fetch exits 1) and the server stays up.
    let bad = fetch("/shutdown?token=wrong", &["--method", "POST"]);
    assert!(!bad.status.success());

    // The right token drains the server to a clean exit.
    let ok = fetch("/shutdown?token=ci-smoke", &["--method", "POST"]);
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    assert_eq!(String::from_utf8(ok.stdout).unwrap(), "draining\n");
    let status = server.wait().unwrap();
    assert!(status.success(), "serve must exit 0 after a drain");
    std::fs::remove_dir_all(&dir).unwrap();
}
