//! The rule engine: pragma collection, `#[cfg(test)]`/`#[test]` range
//! exclusion, and the five shipped rules. Rules are token-sequence
//! matchers over a comment-free token view; they never parse.

use crate::diag::{Diagnostic, Severity};
use crate::lexer::{lex, Token, TokenKind};

/// Stable ids of every shipped rule, in catalog order.
pub const RULE_IDS: [&str; 5] = [
    NO_PANIC_IN_LIB,
    NO_WALLCLOCK,
    NO_UNORDERED_ITER,
    NO_ENV_IN_CORE,
    REGISTRY_DOC_COHERENCE,
];

/// Panic-free zone rule id.
pub const NO_PANIC_IN_LIB: &str = "no-panic-in-lib";
/// Wall-clock rule id.
pub const NO_WALLCLOCK: &str = "no-wallclock";
/// Unordered-iteration rule id.
pub const NO_UNORDERED_ITER: &str = "no-unordered-iter";
/// Environment-read rule id.
pub const NO_ENV_IN_CORE: &str = "no-env-in-core";
/// Registry/DESIGN.md coherence rule id.
pub const REGISTRY_DOC_COHERENCE: &str = "registry-doc-coherence";

/// A lexed file plus the side tables rules need: suppression pragmas
/// and test-only line ranges.
pub struct SourceFile {
    /// Repo-relative path with forward slashes.
    pub path: String,
    tokens: Vec<Token>,
    /// `(line, rule, standalone)` from `aging-lint: allow(...)`
    /// pragmas; a trailing pragma suppresses its own line, a
    /// standalone pragma comment suppresses the line below it.
    pragmas: Vec<(u32, String, bool)>,
    /// Inclusive line ranges covered by `#[cfg(test)]` / `#[test]`
    /// items; rules skip tokens inside them.
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Lexes `source` and precomputes pragma and test-range tables.
    pub fn parse(path: &str, source: &str) -> Self {
        let tokens = lex(source);
        let pragmas = collect_pragmas(&tokens);
        let test_ranges = collect_test_ranges(&tokens);
        SourceFile {
            path: path.to_string(),
            tokens,
            pragmas,
            test_ranges,
        }
    }

    /// Tokens with comments stripped (what rule matchers see).
    fn code(&self) -> Vec<&Token> {
        self.tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Comment)
            .collect()
    }

    fn in_test(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    fn suppressed(&self, line: u32, rule: &str) -> bool {
        self.pragmas
            .iter()
            .any(|(l, r, standalone)| (*l == line || (*standalone && l + 1 == line)) && r == rule)
    }

    fn diag(&self, tok: &Token, rule: &'static str, message: String) -> Diagnostic {
        Diagnostic {
            file: self.path.clone(),
            line: tok.line,
            col: tok.col,
            rule,
            severity: Severity::Error,
            message,
        }
    }
}

/// Extracts `aging-lint: allow(rule-a, rule-b) optional justification`
/// pragmas from comment tokens.
fn collect_pragmas(tokens: &[Token]) -> Vec<(u32, String, bool)> {
    let mut out = Vec::new();
    for tok in tokens.iter().filter(|t| t.kind == TokenKind::Comment) {
        let Some(at) = tok.text.find("aging-lint:") else {
            continue;
        };
        let rest = tok.text[at + "aging-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let standalone = !tokens
            .iter()
            .any(|t| t.kind != TokenKind::Comment && t.line == tok.line && t.col < tok.col);
        for rule in rest[..close].split(',') {
            out.push((tok.line, rule.trim().to_string(), standalone));
        }
    }
    out
}

/// Finds line ranges of items annotated `#[cfg(test)]` or `#[test]`
/// (including `cfg(all(test, …))` and the like): from the attribute to
/// the matching close brace of the item's body, or to the terminating
/// semicolon for brace-less items.
fn collect_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if !(is_punct(code.get(i), "#") && is_punct(code.get(i + 1), "[")) {
            i += 1;
            continue;
        }
        // Scan the attribute body up to its matching `]`, looking for
        // the ident `test` (covers `test`, `cfg(test)`,
        // `cfg(all(test, …))`).
        let start_line = code[i].line;
        let mut j = i + 2;
        let mut depth = 1usize; // the `[` we just saw
        let mut is_test_attr = false;
        while j < code.len() && depth > 0 {
            match (code[j].kind, code[j].text.as_str()) {
                (TokenKind::Punct, "[") => depth += 1,
                (TokenKind::Punct, "]") => depth -= 1,
                (TokenKind::Ident, "test") => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j;
            continue;
        }
        // The annotated item runs to the matching `}` of its first
        // brace, or to a `;` that appears before any brace.
        let mut brace_depth = 0usize;
        let mut saw_brace = false;
        let mut end_line = code.get(j.saturating_sub(1)).map_or(start_line, |t| t.line);
        while j < code.len() {
            let t = code[j];
            end_line = t.line;
            match (t.kind, t.text.as_str()) {
                (TokenKind::Punct, "{") => {
                    brace_depth += 1;
                    saw_brace = true;
                }
                (TokenKind::Punct, "}") => {
                    brace_depth = brace_depth.saturating_sub(1);
                    if saw_brace && brace_depth == 0 {
                        j += 1;
                        break;
                    }
                }
                (TokenKind::Punct, ";") if !saw_brace => {
                    j += 1;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j;
    }
    ranges
}

fn is_punct(tok: Option<&&Token>, text: &str) -> bool {
    tok.is_some_and(|t| t.kind == TokenKind::Punct && t.text == text)
}

fn is_ident(tok: Option<&&Token>, text: &str) -> bool {
    tok.is_some_and(|t| t.kind == TokenKind::Ident && t.text == text)
}

/// `a :: b` ending at index `i` of `b`: true if tokens `i-2..=i-1` are
/// `::`.
fn after_path_sep(code: &[&Token], i: usize) -> bool {
    i >= 2 && is_punct(code.get(i - 2), ":") && is_punct(code.get(i - 1), ":")
}

/// Keywords that may directly precede `[` without forming an indexing
/// expression (slice patterns, array types, attribute openers are
/// handled separately).
const NON_INDEXABLE_KEYWORDS: [&str; 30] = [
    "as", "async", "await", "box", "break", "const", "continue", "crate", "dyn", "else", "enum",
    "fn", "for", "if", "impl", "in", "let", "loop", "match", "move", "mut", "pub", "ref", "return",
    "static", "struct", "trait", "type", "union", "unsafe",
];

/// Zones, relative to the repo root, with forward slashes.
fn panic_zone(path: &str) -> bool {
    [
        "crates/core/src/render.rs",
        "crates/core/src/report.rs",
        "crates/core/src/json.rs",
        "crates/core/src/analysis.rs",
        "crates/core/src/rescache.rs",
        "crates/core/src/serve.rs",
        "crates/core/src/search.rs",
        "crates/sim/src/hierarchy.rs",
    ]
    .contains(&path)
}

fn wallclock_zone(path: &str) -> bool {
    !path.starts_with("crates/bench/")
}

fn unordered_zone(path: &str) -> bool {
    panic_zone(path)
        || [
            "crates/core/src/views.rs",
            "crates/core/src/session.rs",
            "crates/core/src/study.rs",
            "crates/core/src/model.rs",
            "crates/core/src/check.rs",
        ]
        .contains(&path)
}

fn env_zone(path: &str) -> bool {
    !path.contains("/bin/")
}

fn registry_zone(path: &str) -> bool {
    [
        "crates/core/src/registry.rs",
        "crates/core/src/model.rs",
        "crates/core/src/workload.rs",
        "crates/core/src/serve.rs",
        "crates/core/src/search.rs",
        "crates/sim/src/replacement.rs",
    ]
    .contains(&path)
}

/// Which rules apply to a repo-relative path when linting the
/// workspace. Fixture/explicit-file runs apply every rule instead.
pub fn rules_for_path(path: &str) -> Vec<&'static str> {
    let mut out = Vec::new();
    if panic_zone(path) {
        out.push(NO_PANIC_IN_LIB);
    }
    if wallclock_zone(path) {
        out.push(NO_WALLCLOCK);
    }
    if unordered_zone(path) {
        out.push(NO_UNORDERED_ITER);
    }
    if env_zone(path) {
        out.push(NO_ENV_IN_CORE);
    }
    if registry_zone(path) {
        out.push(REGISTRY_DOC_COHERENCE);
    }
    out
}

/// Runs `rules` over one parsed file. `design_doc` is the DESIGN.md
/// text used by `registry-doc-coherence`; pass `None` to skip that
/// lookup (the rule then reports nothing).
pub fn run_rules(
    file: &SourceFile,
    rules: &[&'static str],
    design_doc: Option<&str>,
) -> Vec<Diagnostic> {
    let code = file.code();
    let mut diags = Vec::new();
    for &rule in rules {
        match rule {
            NO_PANIC_IN_LIB => no_panic_in_lib(file, &code, &mut diags),
            NO_WALLCLOCK => no_wallclock(file, &code, &mut diags),
            NO_UNORDERED_ITER => no_unordered_iter(file, &code, &mut diags),
            NO_ENV_IN_CORE => no_env_in_core(file, &code, &mut diags),
            REGISTRY_DOC_COHERENCE => {
                if let Some(doc) = design_doc {
                    registry_doc_coherence(file, &code, doc, &mut diags);
                }
            }
            _ => {}
        }
    }
    diags.retain(|d| !file.in_test(d.line) && !file.suppressed(d.line, d.rule));
    diags.sort_by_key(|d| (d.line, d.col));
    diags
}

fn no_panic_in_lib(file: &SourceFile, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    for (i, tok) in code.iter().enumerate() {
        match (tok.kind, tok.text.as_str()) {
            (TokenKind::Ident, "unwrap" | "expect")
                if is_punct(code.get(i.wrapping_sub(1)), ".") && is_punct(code.get(i + 1), "(") =>
            {
                diags.push(file.diag(
                    tok,
                    NO_PANIC_IN_LIB,
                    format!(
                        "`.{}()` can panic; return a typed error or justify with \
                         `// aging-lint: allow(no-panic-in-lib)`",
                        tok.text
                    ),
                ));
            }
            (TokenKind::Ident, "panic" | "todo" | "unimplemented")
                if is_punct(code.get(i + 1), "!") =>
            {
                diags.push(file.diag(
                    tok,
                    NO_PANIC_IN_LIB,
                    format!("`{}!` aborts the caller; return a typed error", tok.text),
                ));
            }
            // Indexing: `[` whose previous token ends an expression —
            // an identifier (non-keyword), `)`, `]`, or a literal.
            // Excludes `#[attr]`, `vec![…]`, slice patterns after
            // keywords, and array-type positions.
            (TokenKind::Punct, "[") if i > 0 => {
                let prev = code[i - 1];
                let indexing = match prev.kind {
                    TokenKind::Ident => !NON_INDEXABLE_KEYWORDS.contains(&prev.text.as_str()),
                    // `#[attr]` and `name![…]` start with `#`/`!`, so
                    // only `)`/`]` before `[` end an indexable
                    // expression among punctuation.
                    TokenKind::Punct => matches!(prev.text.as_str(), ")" | "]"),
                    TokenKind::Str | TokenKind::Num => true,
                    _ => false,
                };
                if indexing {
                    diags.push(
                        file.diag(
                            tok,
                            NO_PANIC_IN_LIB,
                            "slice/array indexing can panic; use `.get()` and handle `None`"
                                .to_string(),
                        ),
                    );
                }
            }
            _ => {}
        }
    }
}

fn no_wallclock(file: &SourceFile, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind == TokenKind::Ident
            && matches!(tok.text.as_str(), "SystemTime" | "Instant")
            && is_punct(code.get(i + 1), ":")
            && is_punct(code.get(i + 2), ":")
            && is_ident(code.get(i + 3), "now")
        {
            diags.push(file.diag(
                tok,
                NO_WALLCLOCK,
                format!(
                    "`{}::now()` reads the wall clock; results must not depend on \
                     when they are computed (bench harness code is exempt)",
                    tok.text
                ),
            ));
        }
    }
}

fn no_unordered_iter(file: &SourceFile, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    // `use …;` statements are exempt: importing the type is fine, each
    // construction/annotation site needs a BTreeMap or a justification.
    let mut in_use = false;
    for (i, tok) in code.iter().enumerate() {
        match (tok.kind, tok.text.as_str()) {
            (TokenKind::Ident, "use") if i == 0 || !is_punct(code.get(i.wrapping_sub(1)), ":") => {
                in_use = true;
            }
            (TokenKind::Punct, ";") => in_use = false,
            (TokenKind::Ident, "HashMap" | "HashSet") if !in_use => {
                diags.push(file.diag(
                    tok,
                    NO_UNORDERED_ITER,
                    format!(
                        "`{}` iterates in hash order; use `BTreeMap`/sorted iteration in \
                         output and hashing paths, or justify with \
                         `// aging-lint: allow(no-unordered-iter)`",
                        tok.text
                    ),
                ));
            }
            _ => {}
        }
    }
}

fn no_env_in_core(file: &SourceFile, code: &[&Token], diags: &mut Vec<Diagnostic>) {
    for (i, tok) in code.iter().enumerate() {
        if tok.kind == TokenKind::Ident
            && tok.text == "env"
            && is_punct(code.get(i + 1), ":")
            && is_punct(code.get(i + 2), ":")
            && code.get(i + 3).is_some_and(|t| t.kind == TokenKind::Ident)
        {
            // Either bare `env::x` or `std::env::x`; skip other paths
            // like `my::env::x` only if the head is not `std`.
            if after_path_sep(code, i) && !is_ident(code.get(i.wrapping_sub(3)), "std") {
                continue;
            }
            let what = &code[i + 3].text;
            diags.push(file.diag(
                tok,
                NO_ENV_IN_CORE,
                format!(
                    "`env::{what}` reads ambient process state in library code; \
                     take configuration as an argument (bins are exempt)"
                ),
            ));
        }
    }
}

/// Built-in registry key literals: the first string argument of
/// `register_fn(`, `ModelKey::parse(`, and `endpoint(` calls in
/// non-test code (the serve module's route table is a registry too —
/// `endpoint()` takes the path first for exactly this check).
fn registry_doc_coherence(
    file: &SourceFile,
    code: &[&Token],
    doc: &str,
    diags: &mut Vec<Diagnostic>,
) {
    for i in 0..code.len() {
        let registers = is_ident(code.get(i), "register_fn") && is_punct(code.get(i + 1), "(");
        let routes = is_ident(code.get(i), "endpoint") && is_punct(code.get(i + 1), "(");
        let parses_key = is_ident(code.get(i), "parse")
            && after_path_sep(code, i)
            && is_ident(code.get(i.wrapping_sub(3)), "ModelKey")
            && is_punct(code.get(i + 1), "(");
        let key_tok = if registers || routes || parses_key {
            code.get(i + 2)
        } else {
            None
        };
        let Some(key_tok) = key_tok else { continue };
        if key_tok.kind != TokenKind::Str {
            continue; // key built at runtime; nothing to check
        }
        let key = key_tok.text.trim_matches('"');
        if key.is_empty() {
            continue;
        }
        if !doc.contains(key) {
            diags.push(file.diag(
                key_tok,
                REGISTRY_DOC_COHERENCE,
                format!("registry built-in key `{key}` is not documented in DESIGN.md"),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(path: &str, src: &str, rules: &[&'static str]) -> Vec<String> {
        let file = SourceFile::parse(path, src);
        run_rules(
            &file,
            rules,
            Some("documented-key nbti-45nm GET /documented-route"),
        )
        .into_iter()
        .map(|d| d.to_string())
        .collect()
    }

    #[test]
    fn unwrap_flagged_but_not_in_tests_or_strings() {
        let src = r#"
fn f(x: Option<u32>) -> u32 { x.unwrap() }
fn g() -> &'static str { "x.unwrap() in a string" }
#[cfg(test)]
mod tests {
    #[test]
    fn t() { Some(1).unwrap(); }
}
"#;
        let out = run("lib.rs", src, &[NO_PANIC_IN_LIB]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(
            out[0].starts_with("lib.rs:2:33: error[no-panic-in-lib]"),
            "{out:?}"
        );
    }

    #[test]
    fn indexing_flagged_attributes_and_macros_are_not() {
        let src = r#"
#[derive(Debug)]
struct S { v: Vec<u32> }
fn f(s: &S, i: usize) -> u32 { s.v[i] }
fn g() -> Vec<u32> { vec![1, 2] }
fn h(s: &[u32]) -> &[u32] { &s[..1] }
"#;
        let out = run("lib.rs", src, &[NO_PANIC_IN_LIB]);
        assert_eq!(out.len(), 2, "{out:?}"); // s.v[i] and s[..1]
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let src = "
fn f(x: Option<u32>) -> u32 {
    // aging-lint: allow(no-panic-in-lib) provably Some by construction
    x.unwrap()
}
fn g(x: Option<u32>) -> u32 { x.unwrap() } // aging-lint: allow(no-panic-in-lib) same-line
fn h(x: Option<u32>) -> u32 { x.unwrap() }
";
        let out = run("lib.rs", src, &[NO_PANIC_IN_LIB]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("lib.rs:7:"), "{out:?}");
    }

    #[test]
    fn wallclock_and_env_sequences() {
        let src = "
fn t() -> std::time::Instant { std::time::Instant::now() }
fn e() -> Option<String> { std::env::var(\"HOME\").ok() }
fn not_std(m: &my::env::Reader) {}
";
        assert_eq!(run("lib.rs", src, &[NO_WALLCLOCK]).len(), 1);
        assert_eq!(run("lib.rs", src, &[NO_ENV_IN_CORE]).len(), 1);
    }

    #[test]
    fn hashmap_use_import_exempt_construction_flagged() {
        let src = "
use std::collections::HashMap;
fn f() -> HashMap<u32, u32> { HashMap::new() }
";
        let out = run("lib.rs", src, &[NO_UNORDERED_ITER]);
        assert_eq!(out.len(), 2, "{out:?}"); // return type + constructor
    }

    #[test]
    fn registry_keys_checked_against_doc() {
        let src = r#"
fn builtin(reg: &mut Registry) {
    reg.register_fn("documented-key", "d", |x| x);
    reg.register_fn("missing-key", "d", |x| x);
    let _ = ModelKey::parse("nbti-45nm");
}
"#;
        let out = run("registry.rs", src, &[REGISTRY_DOC_COHERENCE]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("missing-key"), "{out:?}");
    }

    #[test]
    fn endpoint_paths_checked_against_doc() {
        let src = r#"
const ROUTES: [Endpoint; 2] = [
    endpoint("/documented-route", "GET", "fine"),
    endpoint("/orphan-route", "GET", "undocumented"),
];
const fn endpoint(path: &'static str, m: &'static str, h: &'static str) -> Endpoint {
    Endpoint { path, m, h }
}
"#;
        let out = run("serve.rs", src, &[REGISTRY_DOC_COHERENCE]);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].contains("/orphan-route"), "{out:?}");
    }

    #[test]
    fn cfg_test_module_fully_excluded() {
        let src = "
#[cfg(all(test, not(miri)))]
mod tests {
    use std::collections::HashMap;
    fn helper() -> HashMap<u32, u32> { HashMap::new() }
}
fn live() { let _ = std::env::var(\"X\"); }
";
        assert!(run("lib.rs", src, &[NO_UNORDERED_ITER]).is_empty());
        assert_eq!(run("lib.rs", src, &[NO_ENV_IN_CORE]).len(), 1);
    }
}
