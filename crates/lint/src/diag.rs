//! Diagnostic type shared by every rule, with the two output
//! encodings the `lint` bin exposes: the human `file:line:col` text
//! form and a line-per-diagnostic JSON form for tooling.

use std::fmt;

/// How serious a finding is. Errors fail the build; warnings are
/// informational and never change the exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory finding.
    Warning,
    /// Build-failing finding.
    Error,
}

impl Severity {
    /// Lowercase name as printed in both output formats.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One lint finding, anchored to a source position.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Repo-relative path with forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
    /// Stable rule id, e.g. `no-panic-in-lib`.
    pub rule: &'static str,
    /// Severity of this finding.
    pub severity: Severity,
    /// Human explanation, one line.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}[{}]: {}",
            self.file,
            self.line,
            self.col,
            self.severity.name(),
            self.rule,
            self.message
        )
    }
}

impl Diagnostic {
    /// The diagnostic as one JSON object (a single line, no trailing
    /// newline), with keys in a fixed order for byte-stable output.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"col\":{},\"severity\":{},\"rule\":{},\"message\":{}}}",
            json_str(&self.file),
            self.line,
            self.col,
            json_str(self.severity.name()),
            json_str(self.rule),
            json_str(&self.message)
        )
    }
}

/// Minimal JSON string encoder (the lint crate is dependency-free by
/// design and deliberately does not pull in `aging-cache`'s codec).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Diagnostic {
        Diagnostic {
            file: "crates/core/src/json.rs".into(),
            line: 7,
            col: 13,
            rule: "no-panic-in-lib",
            severity: Severity::Error,
            message: "`.unwrap()` can panic in a request path".into(),
        }
    }

    #[test]
    fn text_form_is_clickable() {
        assert_eq!(
            sample().to_string(),
            "crates/core/src/json.rs:7:13: error[no-panic-in-lib]: \
             `.unwrap()` can panic in a request path"
        );
    }

    #[test]
    fn json_form_escapes() {
        let mut d = sample();
        d.message = "quote \" and \\ back".into();
        assert_eq!(
            d.to_json(),
            "{\"file\":\"crates/core/src/json.rs\",\"line\":7,\"col\":13,\
             \"severity\":\"error\",\"rule\":\"no-panic-in-lib\",\
             \"message\":\"quote \\\" and \\\\ back\"}"
        );
    }
}
