//! A minimal Rust lexer: just enough token structure for line-oriented
//! source lints, with strings, char literals, lifetimes, raw strings
//! and (nested) comments handled correctly so rules never fire on
//! text that only *looks* like code.
//!
//! This is deliberately not a parser. Rules match short token
//! sequences (`. unwrap (`, `HashMap`, `env :: var`), which is robust
//! against formatting and requires no syntax tree. Comments are kept
//! as tokens so the engine can read `aging-lint: allow(...)` pragmas;
//! rule matchers see a comment-free view.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw `r#ident`).
    Ident,
    /// Any string-ish literal: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Character or byte-character literal: `'a'`, `b'\n'`.
    Char,
    /// Lifetime such as `'a` or `'static`.
    Lifetime,
    /// Numeric literal (integer or float, any base).
    Num,
    /// A single punctuation byte (`.`, `:`, `[`, `!`, …).
    Punct,
    /// Line or block comment, doc comments included; text preserved.
    Comment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Source text of the token (truncated to the opener for strings
    /// is unnecessary — the full text is cheap at workspace scale).
    pub text: String,
    /// 1-based line of the token's first byte.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first byte.
    pub col: u32,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek(0)?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn take_while(&mut self, pred: impl Fn(u8) -> bool) {
        while self.peek(0).is_some_and(&pred) {
            self.bump();
        }
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// How many `b`/`c`/`r`/`#` prefix bytes open a string at `pos`, if
/// any: returns the byte length of the opener up to and including the
/// `"` plus the number of `#`s, or `None` if this is not a string.
fn string_opener(src: &[u8], pos: usize) -> Option<(usize, usize)> {
    let mut i = pos;
    if matches!(src.get(i), Some(b'b') | Some(b'c')) {
        i += 1;
    }
    let raw = src.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0;
    if raw {
        while src.get(i + hashes) == Some(&b'#') {
            hashes += 1;
        }
        i += hashes;
    }
    if src.get(i) == Some(&b'"') {
        Some((i + 1 - pos, hashes))
    } else {
        None
    }
}

/// Lexes `src` into tokens. Never fails: unterminated constructs run
/// to end of input, unknown bytes become `Punct` tokens. Positions
/// are byte-based, 1-indexed, matching compiler convention closely
/// enough for editor jump-to.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(b) = cur.peek(0) {
        let (line, col, start) = (cur.line, cur.col, cur.pos);
        let text = |c: &Cursor, s: usize| String::from_utf8_lossy(&c.src[s..c.pos]).into_owned();
        if b.is_ascii_whitespace() {
            cur.bump();
            continue;
        }
        // Comments (line, incl. doc; block, nested).
        if b == b'/' && cur.peek(1) == Some(b'/') {
            cur.take_while(|b| b != b'\n');
            out.push(Token {
                kind: TokenKind::Comment,
                text: text(&cur, start),
                line,
                col,
            });
            continue;
        }
        if b == b'/' && cur.peek(1) == Some(b'*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some(b'/'), Some(b'*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(b'*'), Some(b'/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.push(Token {
                kind: TokenKind::Comment,
                text: text(&cur, start),
                line,
                col,
            });
            continue;
        }
        // String literals, raw or not, with b/c prefixes.
        if let Some((opener, hashes)) = string_opener(cur.src, cur.pos) {
            for _ in 0..opener {
                cur.bump();
            }
            if hashes == 0 && !text(&cur, start).contains('r') {
                // Cooked string: backslash escapes.
                while let Some(c) = cur.peek(0) {
                    if c == b'\\' {
                        cur.bump();
                        cur.bump();
                    } else if c == b'"' {
                        cur.bump();
                        break;
                    } else {
                        cur.bump();
                    }
                }
            } else {
                // Raw string: ends at `"` followed by `hashes` #s.
                'raw: while let Some(c) = cur.bump() {
                    if c == b'"' {
                        for k in 0..hashes {
                            if cur.peek(k) != Some(b'#') {
                                continue 'raw;
                            }
                        }
                        for _ in 0..hashes {
                            cur.bump();
                        }
                        break;
                    }
                }
            }
            out.push(Token {
                kind: TokenKind::Str,
                text: text(&cur, start),
                line,
                col,
            });
            continue;
        }
        // Raw identifier r#ident (the r#" case was caught above).
        if b == b'r' && cur.peek(1) == Some(b'#') && cur.peek(2).is_some_and(is_ident_start) {
            cur.bump();
            cur.bump();
            cur.take_while(is_ident_continue);
            out.push(Token {
                kind: TokenKind::Ident,
                text: text(&cur, start),
                line,
                col,
            });
            continue;
        }
        // Byte char b'x' — lex the prefix with the literal.
        if b == b'b' && cur.peek(1) == Some(b'\'') {
            cur.bump(); // b
            lex_char_body(&mut cur);
            out.push(Token {
                kind: TokenKind::Char,
                text: text(&cur, start),
                line,
                col,
            });
            continue;
        }
        if is_ident_start(b) {
            cur.take_while(is_ident_continue);
            out.push(Token {
                kind: TokenKind::Ident,
                text: text(&cur, start),
                line,
                col,
            });
            continue;
        }
        if b.is_ascii_digit() {
            lex_number(&mut cur);
            out.push(Token {
                kind: TokenKind::Num,
                text: text(&cur, start),
                line,
                col,
            });
            continue;
        }
        // `'` opens either a lifetime or a char literal. A lifetime is
        // `'` + ident NOT followed by a closing `'` (so `'a'` is a
        // char, `'a` in `<'a>` is a lifetime, `'static` is a
        // lifetime).
        if b == b'\'' {
            let is_lifetime = cur.peek(1).is_some_and(is_ident_start) && {
                let mut k = 2;
                while cur.peek(k).is_some_and(is_ident_continue) {
                    k += 1;
                }
                cur.peek(k) != Some(b'\'')
            };
            if is_lifetime {
                cur.bump();
                cur.take_while(is_ident_continue);
                out.push(Token {
                    kind: TokenKind::Lifetime,
                    text: text(&cur, start),
                    line,
                    col,
                });
            } else {
                lex_char_body(&mut cur);
                out.push(Token {
                    kind: TokenKind::Char,
                    text: text(&cur, start),
                    line,
                    col,
                });
            }
            continue;
        }
        cur.bump();
        out.push(Token {
            kind: TokenKind::Punct,
            text: text(&cur, start),
            line,
            col,
        });
    }
    out
}

/// Consumes a char literal starting at the opening `'`.
fn lex_char_body(cur: &mut Cursor) {
    cur.bump(); // opening '
    match cur.peek(0) {
        Some(b'\\') => {
            cur.bump();
            cur.bump(); // escape head: n, ', u, x, …
                        // \u{…} and \x.. tails run until the closing quote below.
        }
        Some(_) => {
            cur.bump();
        }
        None => return,
    }
    cur.take_while(|b| b != b'\'' && b != b'\n');
    cur.bump(); // closing '
}

/// Consumes a numeric literal starting at a digit. Handles `0x1f`,
/// `40_000`, `1.5e-3`, `1..` (range dots are not consumed) and type
/// suffixes; exotic forms at worst split into extra tokens, which no
/// rule matches on.
fn lex_number(cur: &mut Cursor) {
    let hex = cur.peek(0) == Some(b'0') && matches!(cur.peek(1), Some(b'x') | Some(b'X'));
    cur.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    if !hex && cur.peek(0) == Some(b'.') && cur.peek(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        cur.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
    // Exponent sign: `1e-3` leaves the cursor at `-` after the `e`.
    if !hex
        && cur.pos > 0
        && matches!(cur.src.get(cur.pos - 1), Some(b'e') | Some(b'E'))
        && matches!(cur.peek(0), Some(b'+') | Some(b'-'))
        && cur.peek(1).is_some_and(|b| b.is_ascii_digit())
    {
        cur.bump();
        cur.take_while(|b| b.is_ascii_alphanumeric() || b == b'_');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code_like_text() {
        let toks = kinds(r#"let s = "HashMap::new() // not a comment";"#);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("HashMap")));
        assert!(!toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "HashMap"));
        assert!(!toks.iter().any(|(k, _)| *k == TokenKind::Comment));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let toks = kinds(r##"let s = r#"quote " inside"#; x"##);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "x"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'a' }");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
    }

    #[test]
    fn nested_block_comments_and_positions() {
        let toks = lex("/* a /* b */ c */ x");
        assert_eq!(toks[0].kind, TokenKind::Comment);
        assert_eq!(toks[1].text, "x");
        assert_eq!((toks[1].line, toks[1].col), (1, 19));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let toks = kinds("for i in 0..40_000 { let f = 1.5e-3; }");
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && t == "0"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Num && t == "40_000"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Num && t == "1.5e-3"));
    }

    #[test]
    fn escaped_quote_in_char_literal() {
        let toks = kinds(r"let q = '\''; let u = '\u{1F600}'; y");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            2
        );
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Ident && t == "y"));
    }
}
