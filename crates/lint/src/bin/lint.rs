//! Workspace lint driver.
//!
//! ```text
//! lint [--root <dir>] [--format text|json] [file.rs ...]
//! ```
//!
//! With no file arguments, lints every crate's `src/` tree under the
//! workspace root with each file's zone rules (the self-lint CI
//! runs). With explicit files, applies **every** rule to each —
//! the mode used to demonstrate the checked-in bad fixtures fail.
//! Exits 1 when any error-severity diagnostic fires, 2 on usage or
//! I/O problems.

use std::path::PathBuf;
use std::process::ExitCode;

use aging_lint::{lint_files, lint_workspace, Severity};

fn usage() -> ExitCode {
    eprintln!("usage: lint [--root <dir>] [--format text|json] [file.rs ...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut format = "text".to_string();
    let mut root = PathBuf::from(".");
    let mut files: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => return usage(),
            },
            "--root" => match args.next() {
                Some(r) => root = PathBuf::from(r),
                None => return usage(),
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            f if f.starts_with("--") => return usage(),
            f => files.push(PathBuf::from(f)),
        }
    }

    // Fall back to the manifest's parent workspace when invoked via
    // `cargo run -p aging-lint` from a subdirectory: if `./crates`
    // does not exist but the compile-time workspace root does, use it.
    if !root.join("crates").is_dir() && files.is_empty() {
        let compiled = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from);
        if let Some(ws) = compiled {
            if ws.join("crates").is_dir() {
                root = ws;
            }
        }
    }

    let result = if files.is_empty() {
        lint_workspace(&root)
    } else {
        let design = std::fs::read_to_string(root.join("DESIGN.md")).ok();
        lint_files(&root, &files, design.as_deref())
    };
    let diags = match result {
        Ok(d) => d,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::from(2);
        }
    };

    for d in &diags {
        if format == "json" {
            println!("{}", d.to_json());
        } else {
            println!("{d}");
        }
    }
    let errors = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if format == "text" {
        eprintln!(
            "lint: {} diagnostic{} ({errors} error{})",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" },
            if errors == 1 { "" } else { "s" },
        );
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
