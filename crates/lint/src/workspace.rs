//! Workspace walking: finds every `crates/*/src/**/*.rs` (plus the
//! root facade `src/`) under a repo root, applies each file's zone
//! rules, and returns diagnostics in a deterministic order (files
//! sorted lexicographically, findings in source order).

use std::fs;
use std::path::{Path, PathBuf};

use crate::diag::Diagnostic;
use crate::rules::{self, SourceFile};

/// Collects `.rs` files under `dir`, recursively, sorted by path.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// The source trees a workspace lint covers: every crate's `src/`
/// plus the root package's `src/` facade. Test targets, fixtures and
/// examples are out of scope — lints guard *library* code.
fn workspace_sources(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let crates = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)
        .map_err(|e| format!("read {}: {e}", crates.display()))?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for dir in crate_dirs {
        let src = dir.join("src");
        if src.is_dir() {
            rs_files(&src, &mut out)?;
        }
    }
    let root_src = root.join("src");
    if root_src.is_dir() {
        rs_files(&root_src, &mut out)?;
    }
    Ok(out)
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Lints the whole workspace rooted at `root` with each file's zone
/// rules. DESIGN.md is read from the root for the coherence rule (a
/// missing DESIGN.md is itself an error — the doc is load-bearing).
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let design = fs::read_to_string(root.join("DESIGN.md"))
        .map_err(|e| format!("read {}: {e}", root.join("DESIGN.md").display()))?;
    let mut diags = Vec::new();
    for path in workspace_sources(root)? {
        let rel = rel_path(root, &path);
        let applicable = rules::rules_for_path(&rel);
        if applicable.is_empty() {
            continue;
        }
        let source =
            fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let file = SourceFile::parse(&rel, &source);
        diags.extend(rules::run_rules(&file, &applicable, Some(&design)));
    }
    Ok(diags)
}

/// Lints explicit files with **every** rule, zones ignored — the mode
/// fixtures and ad-hoc checks use. `design_doc` feeds the coherence
/// rule; `None` disables it.
pub fn lint_files(
    root: &Path,
    paths: &[PathBuf],
    design_doc: Option<&str>,
) -> Result<Vec<Diagnostic>, String> {
    let mut diags = Vec::new();
    for path in paths {
        let source =
            fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let rel = rel_path(root, path);
        let file = SourceFile::parse(&rel, &source);
        diags.extend(rules::run_rules(&file, &rules::RULE_IDS, design_doc));
    }
    Ok(diags)
}

/// Lints a single in-memory source with every rule — what the golden
/// fixture tests drive, bypassing the filesystem.
pub fn lint_source(path: &str, source: &str, design_doc: Option<&str>) -> Vec<Diagnostic> {
    let file = SourceFile::parse(path, source);
    rules::run_rules(&file, &rules::RULE_IDS, design_doc)
}
