//! `aging-lint`: dependency-free source lints for the workspace.
//!
//! Every layer of this reproduction stakes its correctness on
//! byte-determinism — byte-pinned table output, content-addressed
//! cache fingerprints, emit→parse identity. This crate *statically*
//! enforces the source-level invariants that determinism and
//! long-lived execution rest on, with a hand-rolled lexer (no
//! external deps, like the rest of the workspace) and a small
//! token-sequence rule engine:
//!
//! | rule | guards |
//! |---|---|
//! | `no-panic-in-lib` | no `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/indexing in the render/report/json/analysis/rescache/serve request paths |
//! | `no-wallclock` | no `SystemTime::now`/`Instant::now` outside `crates/bench` |
//! | `no-unordered-iter` | no `HashMap`/`HashSet` in output/hashing paths without a justification |
//! | `no-env-in-core` | no `std::env` reads outside bins |
//! | `registry-doc-coherence` | every registry built-in key — and every serve endpoint path — appears in DESIGN.md |
//!
//! Findings are suppressed inline with
//! `// aging-lint: allow(<rule>) <one-line justification>` on the
//! same or preceding line. The `lint` bin runs the workspace sweep;
//! a tier-1 test keeps the tree self-lint-clean.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod workspace;

pub use diag::{Diagnostic, Severity};
pub use rules::{rules_for_path, SourceFile, RULE_IDS};
pub use workspace::{lint_files, lint_source, lint_workspace};
