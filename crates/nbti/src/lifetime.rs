//! Cell design and SNM-based lifetime solving.
//!
//! The paper defines **lifetime** as "the time after which the SNM has
//! decreased by more than 20 %" (§IV-A) and reports that in their 45 nm
//! technology "the lifetime of a standard memory cell is 2.93 years"
//! (§IV-B1). This module reproduces both: a [`LifetimeSolver`] finds the
//! SNM-degradation crossing for an arbitrary [`StressProfile`], and
//! [`LifetimeSolver::calibrated`] pins the drift coefficient so the
//! always-on balanced cell lives exactly the reference lifetime.

use crate::device::{Mosfet, MosfetKind};
use crate::error::NbtiError;
use crate::rd::RdModel;
use crate::snm::SnmSolver;
use crate::stress::StressProfile;
use crate::vtc::ReadInverter;

/// Transistor-level description of a 6T SRAM cell plus its operating point.
///
/// The cell is assumed symmetric at design time (both inverters identical);
/// asymmetry arises only from NBTI aging. Fields are private so the
/// `vdd > vdd_low` invariant cannot be broken after construction.
///
/// # Examples
///
/// ```
/// let d = nbti_model::CellDesign::default_45nm();
/// assert!(d.vdd() > d.vdd_low());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CellDesign {
    vdd: f64,
    vdd_low: f64,
    temp_k: f64,
    pullup: Mosfet,
    pulldown: Mosfet,
    access: Mosfet,
}

impl CellDesign {
    /// Creates a cell design.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidVoltage`] unless
    /// `vdd > vdd_low > 0` and `temp_k > 0`.
    pub fn new(
        vdd: f64,
        vdd_low: f64,
        temp_k: f64,
        pullup: Mosfet,
        pulldown: Mosfet,
        access: Mosfet,
    ) -> Result<Self, NbtiError> {
        if !(vdd.is_finite() && vdd > 0.0) {
            return Err(NbtiError::InvalidVoltage {
                name: "vdd",
                value: vdd,
            });
        }
        if !(vdd_low.is_finite() && vdd_low > 0.0 && vdd_low < vdd) {
            return Err(NbtiError::InvalidVoltage {
                name: "vdd_low",
                value: vdd_low,
            });
        }
        if !(temp_k.is_finite() && temp_k > 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "temp_k",
                value: temp_k,
                expected: "temp_k > 0",
            });
        }
        Ok(Self {
            vdd,
            vdd_low,
            temp_k,
            pullup,
            pulldown,
            access,
        })
    }

    /// The 45 nm-flavoured reference cell used throughout the reproduction:
    /// `Vdd = 1.1 V`, drowsy `Vdd,low = 0.75 V`, `T = 358 K` (85 °C), cell
    /// ratio (pull-down/access strength) of 2 for read stability.
    pub fn default_45nm() -> Self {
        let pullup =
            Mosfet::new(MosfetKind::Pmos, 0.35, 1.5e-4, 1.35).expect("valid default pull-up");
        let pulldown =
            Mosfet::new(MosfetKind::Nmos, 0.32, 3.2e-4, 1.30).expect("valid default pull-down");
        let access =
            Mosfet::new(MosfetKind::Nmos, 0.32, 1.6e-4, 1.30).expect("valid default access");
        Self::new(1.1, 0.75, 358.0, pullup, pulldown, access).expect("valid default design")
    }

    /// Nominal supply voltage (V).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Drowsy (voltage-scaled sleep) supply voltage (V).
    pub fn vdd_low(&self) -> f64 {
        self.vdd_low
    }

    /// Operating temperature (K).
    pub fn temp_k(&self) -> f64 {
        self.temp_k
    }

    /// The pull-up pMOS (the NBTI victim).
    pub fn pullup(&self) -> Mosfet {
        self.pullup
    }

    /// The pull-down nMOS.
    pub fn pulldown(&self) -> Mosfet {
        self.pulldown
    }

    /// The access (pass-gate) nMOS.
    pub fn access(&self) -> Mosfet {
        self.access
    }

    /// Returns a copy at a different operating temperature.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if `temp_k` is not positive.
    pub fn with_temperature(&self, temp_k: f64) -> Result<Self, NbtiError> {
        Self::new(
            self.vdd,
            self.vdd_low,
            temp_k,
            self.pullup,
            self.pulldown,
            self.access,
        )
    }

    /// Returns a copy with a different drowsy voltage.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidVoltage`] unless `0 < vdd_low < vdd`.
    pub fn with_vdd_low(&self, vdd_low: f64) -> Result<Self, NbtiError> {
        Self::new(
            self.vdd,
            vdd_low,
            self.temp_k,
            self.pullup,
            self.pulldown,
            self.access,
        )
    }
}

/// SNM-degradation lifetime solver for a [`CellDesign`].
///
/// # Examples
///
/// ```
/// use nbti_model::{CellDesign, LifetimeSolver, SleepMode, StressProfile};
///
/// # fn main() -> Result<(), nbti_model::NbtiError> {
/// let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93)?;
/// let idle_half = StressProfile::new(0.5, 0.5, SleepMode::VoltageScaled)?;
/// let lt = solver.lifetime_years(&idle_half)?;
/// // Sleeping half the time at the drowsy rail extends lifetime well past
/// // the 2.93-year baseline but nowhere near 2x (aging continues at Vlow).
/// assert!(lt > 3.5 && lt < 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct LifetimeSolver {
    design: CellDesign,
    rd: RdModel,
    snm: SnmSolver,
    snm0: f64,
    fail_fraction: f64,
}

impl LifetimeSolver {
    /// The paper's failure criterion: 20 % SNM degradation.
    pub const DEFAULT_FAIL_FRACTION: f64 = 0.20;

    /// Search ceiling for lifetime queries, in years.
    pub const HORIZON_YEARS: f64 = 10_000.0;

    /// Creates a solver from an explicit R–D model and failure fraction.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if `fail_fraction` is not in
    /// `(0, 1)`, or a solver error if the fresh SNM cannot be extracted.
    pub fn new(design: CellDesign, rd: RdModel, fail_fraction: f64) -> Result<Self, NbtiError> {
        if !(fail_fraction > 0.0 && fail_fraction < 1.0) {
            return Err(NbtiError::InvalidParameter {
                name: "fail_fraction",
                value: fail_fraction,
                expected: "0 < fail_fraction < 1",
            });
        }
        let snm = SnmSolver::new();
        let fresh = snm.extract(
            &ReadInverter::from_design(&design, 0.0),
            &ReadInverter::from_design(&design, 0.0),
        )?;
        if fresh.snm <= 0.0 {
            return Err(NbtiError::SolverDiverged {
                context: "fresh cell has no read margin",
            });
        }
        Ok(Self {
            design,
            rd,
            snm,
            snm0: fresh.snm,
            fail_fraction,
        })
    }

    /// Creates a solver whose drift coefficient is calibrated so that an
    /// always-on cell with balanced content (`p0 = 0.5`) lives exactly
    /// `target_years` — the paper's anchor of **2.93 years**.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if `target_years` is not
    /// positive, or solver errors from the SNM extraction.
    pub fn calibrated(design: CellDesign, target_years: f64) -> Result<Self, NbtiError> {
        if !(target_years.is_finite() && target_years > 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "target_years",
                value: target_years,
                expected: "target_years > 0",
            });
        }
        let mut solver = Self::new(design, RdModel::default_45nm(), Self::DEFAULT_FAIL_FRACTION)?;
        // The critical shift is independent of K, so solve it once and
        // back-compute K from ΔV* = K · (duty · a_T · t)^n.
        let dv_star = solver.critical_shift(1.0)?;
        let a_t = solver.rd.temperature_acceleration(solver.design.temp_k());
        let t_eff = 0.5 * a_t * target_years;
        let k_nom = dv_star / t_eff.powf(solver.rd.n());
        solver.rd = solver.rd.with_k_nom(k_nom)?;
        Ok(solver)
    }

    /// Moves the solver to a different operating point (temperature,
    /// drowsy rail, transistor sizing) while keeping the calibrated
    /// drift model — the derivation used by parameterized device
    /// models: calibration stays anchored at the reference cell, and
    /// the override changes only where the cell *operates*.
    ///
    /// # Errors
    ///
    /// Propagates SNM extraction failures for the new design.
    pub fn at_operating_point(&self, design: CellDesign) -> Result<Self, NbtiError> {
        Self::new(design, self.rd.clone(), self.fail_fraction)
    }

    /// Returns a copy with a different SNM-degradation failure
    /// criterion (the paper uses 20 %).
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if `fail_fraction` is
    /// not in `(0, 1)`.
    pub fn with_fail_fraction(&self, fail_fraction: f64) -> Result<Self, NbtiError> {
        Self::new(self.design.clone(), self.rd.clone(), fail_fraction)
    }

    /// The cell design being analyzed.
    pub fn design(&self) -> &CellDesign {
        &self.design
    }

    /// The SNM-degradation fraction at which the cell is declared dead.
    pub fn fail_fraction(&self) -> f64 {
        self.fail_fraction
    }

    /// The calibrated R–D drift model.
    pub fn rd(&self) -> &RdModel {
        &self.rd
    }

    /// Read SNM of the fresh (un-aged) cell, volts.
    pub fn fresh_snm(&self) -> f64 {
        self.snm0
    }

    /// SNM value at which the cell is declared dead, volts.
    pub fn failure_snm(&self) -> f64 {
        self.snm0 * (1.0 - self.fail_fraction)
    }

    /// Read SNM after `years` of operation under `profile`, volts.
    ///
    /// # Errors
    ///
    /// Propagates SNM solver failures.
    pub fn snm_after(&self, profile: &StressProfile, years: f64) -> Result<f64, NbtiError> {
        let (dv_a, dv_b) = self.shifts_after(profile, years);
        let e = self.snm.extract(
            &ReadInverter::from_design(&self.design, dv_a),
            &ReadInverter::from_design(&self.design, dv_b),
        )?;
        Ok(e.snm)
    }

    /// Per-device threshold shifts `(ΔVth_A, ΔVth_B)` after `years` under
    /// `profile`, volts.
    pub fn shifts_after(&self, profile: &StressProfile, years: f64) -> (f64, f64) {
        let (ra, rb) = self.device_rates(profile);
        (self.rd.delta_vth(ra * years), self.rd.delta_vth(rb * years))
    }

    /// Per-device effective stress rates, including the temperature factor.
    pub fn device_rates(&self, profile: &StressProfile) -> (f64, f64) {
        let a_t = self.rd.temperature_acceleration(self.design.temp_k());
        let (ra, rb) = profile.stress_rates(&self.rd, self.design.vdd_low());
        (ra * a_t, rb * a_t)
    }

    /// The critical threshold shift ΔV* on the *more-stressed* device at
    /// which the cell SNM hits the failure criterion, when the
    /// less-stressed device carries `minor_ratio · ΔV*` (with
    /// `minor_ratio = (rate_min / rate_max)^n ∈ [0, 1]`).
    ///
    /// Exposed because it is independent of the drift coefficient and of
    /// the sleep fraction, which lets the [`AgingLut`](crate::lut::AgingLut)
    /// builder amortize it across a whole `p0` row.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if `minor_ratio` is outside
    /// `[0, 1]`, or [`NbtiError::SolverDiverged`] if bisection fails.
    pub fn critical_shift(&self, minor_ratio: f64) -> Result<f64, NbtiError> {
        if !(0.0..=1.0).contains(&minor_ratio) {
            return Err(NbtiError::InvalidParameter {
                name: "minor_ratio",
                value: minor_ratio,
                expected: "0 <= minor_ratio <= 1",
            });
        }
        let target = self.failure_snm();
        let snm_at = |dv: f64| -> Result<f64, NbtiError> {
            let e = self.snm.extract(
                &ReadInverter::from_design(&self.design, dv),
                &ReadInverter::from_design(&self.design, dv * minor_ratio),
            )?;
            Ok(e.snm)
        };
        // March outward to bracket the FIRST crossing. (At extreme,
        // non-physical shifts the read "SNM" can recover — the dead pull-up
        // leaves a 4T-like cell held by the access transistors — so probing
        // only at Vdd would miss the failure.)
        let step = self.design.vdd() / 22.0;
        let mut lo = 0.0_f64;
        let mut hi = f64::NAN;
        let mut dv = step;
        while dv <= self.design.vdd() + 1e-9 {
            if snm_at(dv)? <= target {
                hi = dv;
                break;
            }
            lo = dv;
            dv += step;
        }
        if hi.is_nan() {
            return Err(NbtiError::SolverDiverged {
                context: "failure SNM not reachable within a Vdd of shift",
            });
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if snm_at(mid)? > target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-6 {
                break;
            }
        }
        Ok(0.5 * (lo + hi))
    }

    /// Lifetime in years under `profile`: the time at which the read SNM
    /// has degraded by the failure fraction.
    ///
    /// Returns `f64::INFINITY` when the profile produces no stress at all
    /// (e.g. fully power-gated sleep with `sleep_fraction = 1`).
    ///
    /// # Errors
    ///
    /// Propagates SNM solver failures.
    pub fn lifetime_years(&self, profile: &StressProfile) -> Result<f64, NbtiError> {
        let (ra, rb) = self.device_rates(profile);
        let r_max = ra.max(rb);
        if r_max <= 0.0 {
            return Ok(f64::INFINITY);
        }
        let minor_ratio = (ra.min(rb) / r_max).powf(self.rd.n());
        let dv_star = self.critical_shift(minor_ratio)?;
        Ok(self.rd.effective_years_for(dv_star) / r_max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stress::SleepMode;

    fn solver() -> LifetimeSolver {
        LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap()
    }

    #[test]
    fn calibration_hits_the_paper_anchor() {
        let s = solver();
        let lt = s.lifetime_years(&StressProfile::always_on(0.5)).unwrap();
        assert!(
            (lt - 2.93).abs() < 0.02,
            "calibrated lifetime should be 2.93 years, got {lt}"
        );
    }

    #[test]
    fn snm_after_crosses_failure_at_lifetime() {
        let s = solver();
        let p = StressProfile::always_on(0.5);
        let lt = s.lifetime_years(&p).unwrap();
        let before = s.snm_after(&p, lt * 0.5).unwrap();
        let after = s.snm_after(&p, lt * 1.5).unwrap();
        assert!(before > s.failure_snm());
        assert!(after < s.failure_snm());
    }

    #[test]
    fn sleeping_extends_lifetime_monotonically() {
        let s = solver();
        let mut last = 0.0;
        for i in 0..5 {
            let sleep = 0.2 * i as f64;
            let p = StressProfile::new(0.5, sleep, SleepMode::VoltageScaled).unwrap();
            let lt = s.lifetime_years(&p).unwrap();
            assert!(lt > last, "lifetime must grow with sleep: {lt} vs {last}");
            last = lt;
        }
    }

    #[test]
    fn drowsy_lifetime_matches_rate_scaling() {
        // Under the power-law model LT scales as 1/((1-S) + S*r_v).
        let s = solver();
        let r_v = s.rd().voltage_acceleration(s.design().vdd_low());
        let p = StressProfile::new(0.5, 0.6, SleepMode::VoltageScaled).unwrap();
        let lt = s.lifetime_years(&p).unwrap();
        let expected = 2.93 / ((1.0 - 0.6) + 0.6 * r_v);
        assert!(
            (lt - expected).abs() / expected < 0.02,
            "lt = {lt}, expected ≈ {expected}"
        );
    }

    #[test]
    fn power_gating_beats_voltage_scaling() {
        let s = solver();
        let vs = StressProfile::new(0.5, 0.6, SleepMode::VoltageScaled).unwrap();
        let pg = StressProfile::new(0.5, 0.6, SleepMode::power_gated()).unwrap();
        assert!(s.lifetime_years(&pg).unwrap() > s.lifetime_years(&vs).unwrap());
    }

    #[test]
    fn fully_gated_idle_cell_never_dies() {
        let s = solver();
        let p = StressProfile::new(0.5, 1.0, SleepMode::power_gated()).unwrap();
        assert_eq!(s.lifetime_years(&p).unwrap(), f64::INFINITY);
    }

    #[test]
    fn balanced_content_is_the_best_case() {
        // Paper §II-A (ref [11]): p0 = 0.5 minimizes the worst-device duty.
        let s = solver();
        let balanced = s.lifetime_years(&StressProfile::always_on(0.5)).unwrap();
        for p0 in [0.0, 0.2, 0.8, 1.0] {
            let lt = s.lifetime_years(&StressProfile::always_on(p0)).unwrap();
            assert!(
                lt <= balanced + 1e-6,
                "p0 = {p0} should not beat balanced: {lt} vs {balanced}"
            );
        }
    }

    #[test]
    fn hotter_cells_die_sooner() {
        let hot = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap();
        let design_cool = CellDesign::default_45nm().with_temperature(318.0).unwrap();
        // Same calibrated drift model, cooler operating point.
        let cool = LifetimeSolver::new(design_cool, hot.rd().clone(), 0.20).unwrap();
        let p = StressProfile::always_on(0.5);
        assert!(cool.lifetime_years(&p).unwrap() > hot.lifetime_years(&p).unwrap());
    }

    #[test]
    fn operating_point_derivation_keeps_the_drift_model() {
        let s = solver();
        let cool = s
            .at_operating_point(CellDesign::default_45nm().with_temperature(318.0).unwrap())
            .unwrap();
        assert_eq!(cool.rd(), s.rd(), "calibration must carry over");
        let p = StressProfile::always_on(0.5);
        assert!(cool.lifetime_years(&p).unwrap() > s.lifetime_years(&p).unwrap());
    }

    #[test]
    fn fail_fraction_derivation_is_monotone_and_validated() {
        let s = solver();
        let p = StressProfile::always_on(0.5);
        let strict = s.with_fail_fraction(0.10).unwrap();
        let lax = s.with_fail_fraction(0.30).unwrap();
        assert_eq!(s.fail_fraction(), LifetimeSolver::DEFAULT_FAIL_FRACTION);
        assert!(strict.lifetime_years(&p).unwrap() < s.lifetime_years(&p).unwrap());
        assert!(lax.lifetime_years(&p).unwrap() > s.lifetime_years(&p).unwrap());
        assert!(s.with_fail_fraction(0.0).is_err());
        assert!(s.with_fail_fraction(1.0).is_err());
    }

    #[test]
    fn rejects_bad_construction() {
        let d = CellDesign::default_45nm();
        assert!(LifetimeSolver::new(d.clone(), RdModel::default_45nm(), 0.0).is_err());
        assert!(LifetimeSolver::new(d.clone(), RdModel::default_45nm(), 1.0).is_err());
        assert!(LifetimeSolver::calibrated(d, -2.0).is_err());
    }

    #[test]
    fn design_validation() {
        let d = CellDesign::default_45nm();
        assert!(CellDesign::new(1.1, 1.2, 358.0, d.pullup(), d.pulldown(), d.access()).is_err());
        assert!(CellDesign::new(0.0, 0.7, 358.0, d.pullup(), d.pulldown(), d.access()).is_err());
        assert!(d.with_vdd_low(2.0).is_err());
        assert!(d.with_temperature(-3.0).is_err());
    }

    #[test]
    fn critical_shift_shrinks_with_symmetric_companion() {
        // If the second device ages along (ratio -> 1), failure is reached
        // at a smaller ΔV on the major device than if it stayed fresh?
        // Actually the *worst lobe* is set by the major device; a fresh
        // companion keeps the other lobe large, and SNM = min lobe, so the
        // asymmetric case fails at a similar or smaller major shift.
        let s = solver();
        let sym = s.critical_shift(1.0).unwrap();
        let asym = s.critical_shift(0.0).unwrap();
        assert!(sym > 0.0 && asym > 0.0);
        assert!(
            asym <= sym * 1.5,
            "asymmetric critical shift should be comparable: {asym} vs {sym}"
        );
    }
}
