//! Process-variation extension: per-cell Vth mismatch and extreme-value
//! bank lifetimes.
//!
//! The paper evaluates a *nominal* cell; real arrays carry random dopant
//! fluctuation, so each cell's pull-up pair starts with a threshold
//! mismatch `m = δVth,A − δVth,B`. A mismatched cell has one butterfly
//! lobe pre-shrunk and reaches the 20 %-SNM failure after *less* NBTI
//! drift — and a bank dies with its **first** cell. This module
//! characterizes the critical drift as a function of initial mismatch and
//! propagates it through the extreme-value statistics of `N` cells:
//!
//! ```text
//! P(max |m| ≤ x over N cells) = (2Φ(x/σm) − 1)^N
//! ```
//!
//! (Kang et al., IEEE TCAD 2008 — the paper's ref. \[23\] — analyze
//! exactly this Vth-variation + NBTI interaction at array level.)

use crate::error::NbtiError;
use crate::lifetime::LifetimeSolver;
use crate::snm::SnmSolver;
use crate::vtc::ReadInverter;

/// Characterized critical effective-stress budget vs initial mismatch.
#[derive(Debug, Clone, PartialEq)]
pub struct VariationTable {
    /// Mismatch grid, volts (non-negative; symmetric by construction).
    mismatch_axis: Vec<f64>,
    /// Critical effective years at worst-device rate 1, per grid point.
    t_eff_star: Vec<f64>,
}

impl VariationTable {
    /// Interpolated critical budget at |mismatch| `m` volts (clamped to
    /// the characterized range).
    pub fn t_eff_star(&self, m: f64) -> f64 {
        let m = m.abs();
        let axis = &self.mismatch_axis;
        if m <= axis[0] {
            return self.t_eff_star[0];
        }
        if m >= axis[axis.len() - 1] {
            return self.t_eff_star[axis.len() - 1];
        }
        let i = axis.partition_point(|&a| a <= m) - 1;
        let t = (m - axis[i]) / (axis[i + 1] - axis[i]);
        self.t_eff_star[i] + t * (self.t_eff_star[i + 1] - self.t_eff_star[i])
    }

    /// The characterized grid (for reports).
    pub fn grid(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.mismatch_axis
            .iter()
            .copied()
            .zip(self.t_eff_star.iter().copied())
    }
}

/// Vth-variation model: iid normal offsets on each pull-up threshold.
///
/// # Examples
///
/// ```no_run
/// use nbti_model::{CellDesign, LifetimeSolver, VariationModel};
///
/// # fn main() -> Result<(), nbti_model::NbtiError> {
/// let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93)?;
/// let var = VariationModel::new(0.030, 1 << 15)?; // 30 mV sigma, 32k cells
/// let table = var.characterize(&solver)?;
/// // The median bank is noticeably shorter-lived than the nominal cell.
/// let median = var.bank_lifetime_quantile(&table, 1.0, 0.5);
/// assert!(median < 2.93);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    sigma_vth: f64,
    cells_per_bank: u64,
}

impl VariationModel {
    /// Creates a model with per-device threshold sigma `sigma_vth` volts
    /// and `cells_per_bank` cells.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if `sigma_vth` is not in
    /// `[0, 0.2)` V or `cells_per_bank` is zero.
    pub fn new(sigma_vth: f64, cells_per_bank: u64) -> Result<Self, NbtiError> {
        if !(0.0..0.2).contains(&sigma_vth) || !sigma_vth.is_finite() {
            return Err(NbtiError::InvalidParameter {
                name: "sigma_vth",
                value: sigma_vth,
                expected: "0 <= sigma < 0.2 V",
            });
        }
        if cells_per_bank == 0 {
            return Err(NbtiError::InvalidParameter {
                name: "cells_per_bank",
                value: 0.0,
                expected: "at least one cell",
            });
        }
        Ok(Self {
            sigma_vth,
            cells_per_bank,
        })
    }

    /// Per-device threshold sigma, volts.
    pub fn sigma_vth(&self) -> f64 {
        self.sigma_vth
    }

    /// Cells per bank.
    pub fn cells_per_bank(&self) -> u64 {
        self.cells_per_bank
    }

    /// Sigma of the *pair mismatch* `m = δA − δB` (√2 larger than the
    /// per-device sigma).
    pub fn sigma_mismatch(&self) -> f64 {
        self.sigma_vth * std::f64::consts::SQRT_2
    }

    /// Characterizes the critical effective-stress budget over a mismatch
    /// grid `0..4σm` using the solver's SNM machinery: the mismatched
    /// fresh cell is re-centred (its fresh SNM re-extracted) and the
    /// balanced-aging critical shift re-solved against the *nominal*
    /// failure threshold.
    ///
    /// # Errors
    ///
    /// Propagates SNM solver failures.
    pub fn characterize(&self, solver: &LifetimeSolver) -> Result<VariationTable, NbtiError> {
        let design = solver.design();
        let snm = SnmSolver::new();
        let target = solver.failure_snm();
        // 5σ covers the worst cell of ~10^6-cell banks (Φ⁻¹ of the
        // extreme quantile stays below 5 for N ≤ 1.7e6 at q ≥ 1 %).
        let points = 11usize;
        let max_m = (5.0 * self.sigma_mismatch()).max(1e-4);
        let mut mismatch_axis = Vec::with_capacity(points);
        let mut t_eff_star = Vec::with_capacity(points);
        for i in 0..points {
            let m = max_m * i as f64 / (points - 1) as f64;
            // The mismatch loads device A by +m/2 and relieves B by −m/2
            // (the sign convention is immaterial by symmetry). Aging then
            // adds the balanced drift dv on both.
            let snm_at = |dv: f64| -> Result<f64, NbtiError> {
                let e = snm.extract(
                    &ReadInverter::from_design(design, (m / 2.0 + dv).max(0.0)),
                    &ReadInverter::from_design(design, (-m / 2.0 + dv).max(0.0)),
                )?;
                Ok(e.snm)
            };
            // Bracket and bisect the first crossing, as in the nominal
            // solver.
            let step = design.vdd() / 22.0;
            let mut lo = 0.0f64;
            let mut hi = f64::NAN;
            let mut dv = 0.0;
            while dv <= design.vdd() {
                if snm_at(dv)? <= target {
                    hi = dv;
                    break;
                }
                lo = dv;
                dv += step;
            }
            let dv_star = if hi.is_nan() {
                0.0 // already dead at time zero (extreme mismatch)
            } else {
                let mut lo = lo;
                let mut hi = hi;
                for _ in 0..40 {
                    let mid = 0.5 * (lo + hi);
                    if snm_at(mid)? > target {
                        lo = mid;
                    } else {
                        hi = mid;
                    }
                    if hi - lo < 1e-5 {
                        break;
                    }
                }
                0.5 * (lo + hi)
            };
            mismatch_axis.push(m);
            t_eff_star.push(solver.rd().effective_years_for(dv_star));
        }
        Ok(VariationTable {
            mismatch_axis,
            t_eff_star,
        })
    }

    /// Quantile `q` of the bank lifetime (years) at worst-device
    /// effective-stress rate `rate`, using the extreme-value law for the
    /// worst cell of the bank.
    ///
    /// The worst mismatch over `N` cells at bank-quantile `q` satisfies
    /// `(2Φ(x/σm) − 1)^N = 1 − q`, i.e. the bank's `q`-quantile lifetime
    /// is driven by the `(1 − q)^(1/N)` quantile of the folded normal.
    pub fn bank_lifetime_quantile(&self, table: &VariationTable, rate: f64, q: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        let q = q.clamp(1e-12, 1.0 - 1e-12);
        // Worst-cell mismatch at this bank quantile.
        let p_single = (1.0 - q).powf(1.0 / self.cells_per_bank as f64);
        let x = self.sigma_mismatch() * inverse_normal_cdf(0.5 * (p_single + 1.0));
        table.t_eff_star(x) / rate
    }

    /// Convenience: the median bank lifetime at `rate`.
    pub fn median_bank_lifetime(&self, table: &VariationTable, rate: f64) -> f64 {
        self.bank_lifetime_quantile(table, rate, 0.5)
    }
}

/// Acklam's rational approximation of the standard normal inverse CDF
/// (|relative error| < 1.15e-9 over the open unit interval).
fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::CellDesign;
    use std::sync::OnceLock;

    fn solver() -> &'static LifetimeSolver {
        static S: OnceLock<LifetimeSolver> = OnceLock::new();
        S.get_or_init(|| LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap())
    }

    #[test]
    fn inverse_cdf_anchors() {
        assert!((inverse_normal_cdf(0.5)).abs() < 1e-8);
        assert!((inverse_normal_cdf(0.8413447460685429) - 1.0).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.9772498680518208) - 2.0).abs() < 1e-6);
        assert!((inverse_normal_cdf(0.158655) + 1.0).abs() < 1e-4);
    }

    #[test]
    fn critical_budget_shrinks_with_mismatch() {
        let var = VariationModel::new(0.030, 1 << 14).unwrap();
        let table = var.characterize(solver()).unwrap();
        let points: Vec<(f64, f64)> = table.grid().collect();
        for w in points.windows(2) {
            assert!(
                w[1].1 <= w[0].1 + 1e-9,
                "budget must not grow with mismatch: {points:?}"
            );
        }
        assert!(points[0].1 > 0.0);
    }

    #[test]
    fn zero_variation_recovers_the_nominal_cell() {
        let var = VariationModel::new(0.0, 1 << 14).unwrap();
        let table = var.characterize(solver()).unwrap();
        // rate 0.5 = always-on balanced cell: the calibration anchor.
        let lt = var.median_bank_lifetime(&table, 0.5);
        assert!((lt - 2.93).abs() < 0.05, "lt = {lt}");
    }

    #[test]
    fn variation_costs_lifetime_and_bigger_banks_cost_more() {
        let table30 = VariationModel::new(0.030, 1 << 10)
            .unwrap()
            .characterize(solver())
            .unwrap();
        let small = VariationModel::new(0.030, 1 << 10).unwrap();
        let large = VariationModel::new(0.030, 1 << 18).unwrap();
        let nominal = 2.93;
        let lt_small = small.median_bank_lifetime(&table30, 0.5);
        let lt_large = large.median_bank_lifetime(&table30, 0.5);
        assert!(
            lt_small < nominal,
            "variation must cost lifetime: {lt_small}"
        );
        assert!(
            lt_large < lt_small,
            "more cells, worse worst-case: {lt_large} vs {lt_small}"
        );
    }

    #[test]
    fn quantiles_are_ordered() {
        let var = VariationModel::new(0.025, 1 << 15).unwrap();
        let table = var.characterize(solver()).unwrap();
        let q10 = var.bank_lifetime_quantile(&table, 0.5, 0.10);
        let q50 = var.bank_lifetime_quantile(&table, 0.5, 0.50);
        let q90 = var.bank_lifetime_quantile(&table, 0.5, 0.90);
        assert!(
            q10 <= q50 && q50 <= q90,
            "lifetime quantiles must be non-decreasing in q: {q10} {q50} {q90}"
        );
    }

    #[test]
    fn sleep_still_helps_under_variation() {
        let var = VariationModel::new(0.030, 1 << 15).unwrap();
        let table = var.characterize(solver()).unwrap();
        let busy = var.median_bank_lifetime(&table, 0.5);
        let drowsy = var.median_bank_lifetime(&table, 0.5 * 0.3);
        assert!(drowsy > busy);
        assert_eq!(var.bank_lifetime_quantile(&table, 0.0, 0.5), f64::INFINITY);
    }

    #[test]
    fn validation() {
        assert!(VariationModel::new(-0.01, 100).is_err());
        assert!(VariationModel::new(0.5, 100).is_err());
        assert!(VariationModel::new(0.03, 0).is_err());
    }
}
