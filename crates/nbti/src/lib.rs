//! NBTI aging physics for 6T SRAM cells.
//!
//! This crate is the analytical stand-in for the HSPICE + 45 nm design-kit
//! characterization flow used by the DATE 2011 paper *"Partitioned Cache
//! Architectures for Reduced NBTI-Induced Aging"* (Calimera, Loghi, Macii,
//! Poncino). It provides:
//!
//! * an [alpha-power-law MOSFET model](device) (Sakurai–Newton) for the six
//!   transistors of a 6T SRAM cell,
//! * a [numerical voltage-transfer-curve solver](vtc) for the cell inverters
//!   with the access transistors conducting (read condition),
//! * a [butterfly-curve read-SNM extractor](snm) (largest embedded square),
//! * a [long-term reaction–diffusion ΔVth model](rd) with power-law voltage
//!   acceleration and Arrhenius temperature acceleration,
//! * a [6T-cell stress bookkeeping model](stress) keyed on the probability of
//!   storing a logic '0' (`p0`) and the fraction of time spent in a low-power
//!   state,
//! * a [lifetime solver](lifetime) that finds the time at which the read SNM
//!   has degraded by 20 % (the paper's failure criterion), calibrated so that
//!   an always-on balanced cell lives **2.93 years**, and
//! * a [characterization lookup table](lut) over `(p0, sleep fraction)` with
//!   bilinear interpolation — the artifact the paper's cache simulator
//!   consumes, and
//! * a [process-wide calibration cache](calibration) sharing the solved
//!   reference anchor across derived device models (temperature /
//!   drowsy-rail / failure-criterion variants).
//!
//! # Quick start
//!
//! ```
//! use nbti_model::{CellDesign, LifetimeSolver, SleepMode, StressProfile};
//!
//! # fn main() -> Result<(), nbti_model::NbtiError> {
//! let design = CellDesign::default_45nm();
//! let solver = LifetimeSolver::calibrated(design, 2.93)?;
//!
//! // An always-on cell with balanced content lives exactly the calibration
//! // target.
//! let base = solver.lifetime_years(&StressProfile::always_on(0.5))?;
//! assert!((base - 2.93).abs() < 0.01);
//!
//! // Sleeping half of the time in a voltage-scaled state extends lifetime.
//! let drowsy = StressProfile::new(0.5, 0.5, SleepMode::VoltageScaled)?;
//! assert!(solver.lifetime_years(&drowsy)? > base);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod device;
pub mod drv;
pub mod error;
pub mod lifetime;
pub mod lut;
pub mod rd;
pub mod snm;
pub mod stress;
pub mod variation;
pub mod vtc;

pub use device::{Mosfet, MosfetKind};
pub use drv::DrvAnalysis;
pub use error::NbtiError;
pub use lifetime::{CellDesign, LifetimeSolver};
pub use lut::AgingLut;
pub use rd::RdModel;
pub use snm::{ButterflyCurves, SnmExtraction, SnmSolver};
pub use stress::{SleepMode, StressProfile};
pub use variation::{VariationModel, VariationTable};
pub use vtc::{ReadInverter, VtcSolver};

/// Seconds in one (Julian) year, used for time unit conversions throughout.
pub const SECONDS_PER_YEAR: f64 = 365.25 * 24.0 * 3600.0;
