//! Butterfly-curve Static Noise Margin (SNM) extraction.
//!
//! The SNM of an SRAM cell is "the minimum DC noise voltage necessary to
//! change the state of the cell" (paper §II-A). Graphically it is the side
//! of the **largest square** that fits inside either lobe of the butterfly
//! plot formed by the voltage-transfer curves of the two cross-coupled
//! inverters; the cell's SNM is the *smaller* of the two lobes (asymmetric
//! NBTI degradation shrinks one lobe faster than the other).
//!
//! # Method
//!
//! Both VTCs are sampled densely. For every sample point `P` on curve 1 we
//! shoot the 45° diagonal `P + d·(1, 1)` and find its nearest intersections
//! with curve 2 in the `+d` and `−d` directions (linear interpolation over
//! the curve's segments). A candidate is kept only if the diagonal reaches
//! curve 2 *before* re-crossing curve 1 (this guards against measuring
//! across the butterfly "eye" into the opposite lobe). The corner pair
//! `(P, P + d·(1, 1))` spans an axis-aligned square of side `|d|`; the
//! upper-left lobe is swept in the `+d` direction and the lower-right lobe
//! in `−d`, and `SNM = min(lobe₊, lobe₋)`.
//!
//! A cell that has lost bistability (curves cross only once) has a vanished
//! lobe and the extraction correctly reports `SNM = 0`.

use crate::error::NbtiError;
use crate::vtc::{ReadInverter, VtcSolver};

/// Default number of VTC samples per curve.
const DEFAULT_SAMPLES: usize = 161;

/// The two sampled butterfly curves in the `(V_A, V_B)` plane.
///
/// Curve 1 is inverter 1 (input `V_B`, output `V_A`) sampled as
/// `(f1(v_b), v_b)`; curve 2 is inverter 2 sampled as `(v_a, f2(v_a))`.
#[derive(Debug, Clone, PartialEq)]
pub struct ButterflyCurves {
    /// Points of inverter 1's transfer curve, `(V_A, V_B)` pairs.
    pub curve1: Vec<(f64, f64)>,
    /// Points of inverter 2's transfer curve, `(V_A, V_B)` pairs.
    pub curve2: Vec<(f64, f64)>,
}

/// Result of an SNM extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnmExtraction {
    /// The static noise margin (side of the smaller lobe square), volts.
    pub snm: f64,
    /// Largest square side found in the `+d` (lower-right) sweep, volts.
    pub lobe_pos: f64,
    /// Largest square side found in the `−d` (upper-left) sweep, volts.
    pub lobe_neg: f64,
}

/// Butterfly SNM solver.
///
/// # Examples
///
/// ```
/// use nbti_model::{CellDesign, ReadInverter, SnmSolver};
///
/// # fn main() -> Result<(), nbti_model::NbtiError> {
/// let design = CellDesign::default_45nm();
/// let solver = SnmSolver::new();
/// let fresh = solver.extract(
///     &ReadInverter::from_design(&design, 0.0),
///     &ReadInverter::from_design(&design, 0.0),
/// )?;
/// // A fresh symmetric cell has two equal lobes and a healthy margin.
/// assert!(fresh.snm > 0.05);
/// assert!((fresh.lobe_pos - fresh.lobe_neg).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SnmSolver {
    samples: usize,
}

impl Default for SnmSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SnmSolver {
    /// Creates a solver with the default sampling density (161 points per
    /// curve, ≈ 7 mV resolution at Vdd = 1.1 V).
    pub fn new() -> Self {
        Self {
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Creates a solver with a custom per-curve sampling density.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if `samples < 16` (the
    /// extraction becomes meaningless below that).
    pub fn with_samples(samples: usize) -> Result<Self, NbtiError> {
        if samples < 16 {
            return Err(NbtiError::InvalidParameter {
                name: "samples",
                value: samples as f64,
                expected: "at least 16 samples per curve",
            });
        }
        Ok(Self { samples })
    }

    /// Number of samples taken per curve.
    pub fn samples(&self) -> usize {
        self.samples
    }

    /// Samples the butterfly curves for a pair of (possibly aged) inverters.
    ///
    /// # Errors
    ///
    /// Propagates VTC solver failures.
    pub fn butterfly(
        &self,
        inverter1: &ReadInverter,
        inverter2: &ReadInverter,
    ) -> Result<ButterflyCurves, NbtiError> {
        let vtc1 = VtcSolver::sample(inverter1, self.samples)?;
        let vtc2 = VtcSolver::sample(inverter2, self.samples)?;
        // Curve 1: V_A = f1(V_B)  → points (f1(v), v).
        let curve1 = vtc1.samples().iter().map(|&(u, v)| (v, u)).collect();
        // Curve 2: V_B = f2(V_A)  → points (v, f2(v)).
        let curve2 = vtc2.samples().to_vec();
        Ok(ButterflyCurves { curve1, curve2 })
    }

    /// Extracts the read SNM for a pair of (possibly aged) inverters.
    ///
    /// `inverter1` drives node A (its pMOS is stressed while the cell holds
    /// `A = 1`), `inverter2` drives node B.
    ///
    /// # Errors
    ///
    /// Propagates VTC solver failures.
    pub fn extract(
        &self,
        inverter1: &ReadInverter,
        inverter2: &ReadInverter,
    ) -> Result<SnmExtraction, NbtiError> {
        let curves = self.butterfly(inverter1, inverter2)?;
        Ok(Self::extract_from_curves(&curves))
    }

    /// Runs the diagonal-sweep extraction on pre-sampled curves.
    pub fn extract_from_curves(curves: &ButterflyCurves) -> SnmExtraction {
        let lobe_pos = Self::lobe(&curves.curve1, &curves.curve2, Direction::Plus);
        let lobe_neg = Self::lobe(&curves.curve1, &curves.curve2, Direction::Minus);
        SnmExtraction {
            snm: lobe_pos.min(lobe_neg).max(0.0),
            lobe_pos,
            lobe_neg,
        }
    }

    /// Sweeps every point of `from`, shooting the 45° diagonal in the given
    /// direction, and returns the largest guarded square side.
    fn lobe(from: &[(f64, f64)], to: &[(f64, f64)], dir: Direction) -> f64 {
        let mut best = 0.0_f64;
        for (i, &p) in from.iter().enumerate() {
            // Nearest crossing with the target curve.
            let Some(d_target) = nearest_crossing(p, to, dir, None) else {
                continue;
            };
            // Nearest re-crossing with our own curve (ignoring the segments
            // adjacent to the launch point).
            let d_self = nearest_crossing(p, from, dir, Some(i));
            if let Some(d_self) = d_self {
                if d_self < d_target {
                    // The diagonal exits the lobe through our own curve
                    // first; the square would not be inscribed.
                    continue;
                }
            }
            best = best.max(d_target);
        }
        best
    }
}

/// Sweep direction along the `(1, 1)` diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    /// Growing `V_A` and `V_B` (toward the upper-left lobe's far corner).
    Plus,
    /// Shrinking `V_A` and `V_B` (toward the lower-right lobe's far corner).
    Minus,
}

/// Finds the nearest intersection of the diagonal through `p` with the
/// polyline `curve`, in direction `dir`, returning the |distance| along the
/// `V_A` axis. `skip_around` excludes the two segments adjacent to a launch
/// index (used when intersecting a curve with itself).
fn nearest_crossing(
    p: (f64, f64),
    curve: &[(f64, f64)],
    dir: Direction,
    skip_around: Option<usize>,
) -> Option<f64> {
    let line_level = p.0 - p.1;
    let mut nearest: Option<f64> = None;
    for j in 0..curve.len().saturating_sub(1) {
        if let Some(skip) = skip_around {
            // Exclude segments that touch the launch sample.
            if j + 1 == skip || j == skip {
                continue;
            }
        }
        let (ax, ay) = curve[j];
        let (bx, by) = curve[j + 1];
        let ha = (ax - ay) - line_level;
        let hb = (bx - by) - line_level;
        if (ha > 0.0 && hb > 0.0) || (ha < 0.0 && hb < 0.0) {
            continue;
        }
        let denom = ha - hb;
        let t = if denom.abs() < f64::EPSILON {
            0.0
        } else {
            ha / denom
        };
        let qx = ax + t * (bx - ax);
        let d = qx - p.0;
        let dist = match dir {
            Direction::Plus if d > 1e-12 => d,
            Direction::Minus if d < -1e-12 => -d,
            _ => continue,
        };
        nearest = Some(match nearest {
            Some(cur) => cur.min(dist),
            None => dist,
        });
    }
    nearest
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::CellDesign;

    fn design() -> CellDesign {
        CellDesign::default_45nm()
    }

    fn snm_with_shifts(d1: f64, d2: f64) -> SnmExtraction {
        let d = design();
        SnmSolver::new()
            .extract(
                &ReadInverter::from_design(&d, d1),
                &ReadInverter::from_design(&d, d2),
            )
            .unwrap()
    }

    #[test]
    fn fresh_cell_has_symmetric_lobes() {
        let e = snm_with_shifts(0.0, 0.0);
        assert!(e.snm > 0.05, "fresh read SNM too small: {}", e.snm);
        assert!(e.snm < 0.5, "fresh read SNM implausibly large: {}", e.snm);
        let asym = (e.lobe_pos - e.lobe_neg).abs() / e.snm;
        assert!(asym < 0.05, "lobes should be symmetric, asym = {asym}");
    }

    #[test]
    fn read_snm_below_hold_snm() {
        let d = design();
        let read = snm_with_shifts(0.0, 0.0);
        let hold_inv = ReadInverter::new(d.pullup(), d.pulldown(), None, d.vdd()).unwrap();
        let hold = SnmSolver::new().extract(&hold_inv, &hold_inv).unwrap();
        assert!(
            read.snm < hold.snm,
            "read SNM ({}) must be below hold SNM ({})",
            read.snm,
            hold.snm
        );
    }

    #[test]
    fn snm_decreases_monotonically_with_symmetric_aging() {
        let mut last = f64::INFINITY;
        for step in 0..6 {
            let dv = 0.02 * step as f64;
            let e = snm_with_shifts(dv, dv);
            assert!(
                e.snm <= last + 1e-4,
                "SNM must not grow with aging (dv = {dv}): {} > {last}",
                e.snm
            );
            last = e.snm;
        }
    }

    #[test]
    fn asymmetric_aging_hurts_more_than_balanced_half() {
        // Same *total* Vth shift, concentrated on one device vs split:
        // the worst-case lobe shrinks faster when concentrated.
        let concentrated = snm_with_shifts(0.08, 0.0);
        let split = snm_with_shifts(0.04, 0.04);
        assert!(
            concentrated.snm <= split.snm + 1e-3,
            "concentrated {} vs split {}",
            concentrated.snm,
            split.snm
        );
    }

    #[test]
    fn snm_is_symmetric_under_inverter_swap() {
        let a = snm_with_shifts(0.06, 0.01);
        let b = snm_with_shifts(0.01, 0.06);
        assert!(
            (a.snm - b.snm).abs() < 2e-3,
            "swap symmetry violated: {} vs {}",
            a.snm,
            b.snm
        );
    }

    #[test]
    fn heavy_aging_erodes_most_of_the_margin() {
        // 0.5 V of symmetric drift destroys well over half the fresh
        // margin (far beyond the paper's 20 % failure criterion). Beyond
        // that the model's read "SNM" recovers non-physically (the dead
        // pull-up leaves an access-loaded 4T-like cell), which is why the
        // lifetime solver brackets the FIRST crossing.
        let fresh = snm_with_shifts(0.0, 0.0);
        let aged = snm_with_shifts(0.5, 0.5);
        assert!(
            aged.snm < 0.5 * fresh.snm,
            "0.5 V of aging should halve the margin: {} vs fresh {}",
            aged.snm,
            fresh.snm
        );
    }

    #[test]
    fn solver_sampling_validation() {
        assert!(SnmSolver::with_samples(8).is_err());
        assert!(SnmSolver::with_samples(64).is_ok());
    }

    #[test]
    fn denser_sampling_refines_but_does_not_change_regime() {
        let d = design();
        let coarse = SnmSolver::with_samples(81)
            .unwrap()
            .extract(
                &ReadInverter::from_design(&d, 0.0),
                &ReadInverter::from_design(&d, 0.0),
            )
            .unwrap();
        let fine = SnmSolver::with_samples(321)
            .unwrap()
            .extract(
                &ReadInverter::from_design(&d, 0.0),
                &ReadInverter::from_design(&d, 0.0),
            )
            .unwrap();
        assert!(
            (coarse.snm - fine.snm).abs() < 0.01,
            "sampling sensitivity too high: {} vs {}",
            coarse.snm,
            fine.snm
        );
    }
}
