//! Process-wide cache of the expensive reference calibration.
//!
//! Every device model in the reproduction anchors to the same
//! measurement: the paper's 45 nm 6T cell, always on with balanced
//! content, lives **2.93 years** at 85 °C under the 20 %-SNM failure
//! criterion (§IV-B1). Solving that calibration — a fresh-SNM
//! extraction plus a critical-shift bisection — costs hundreds of
//! butterfly-curve solves, and it is *pure*: the inputs are compile-time
//! constants. This module computes it once per process and hands out the
//! shared result, so derived models (temperature / drowsy-rail /
//! failure-criterion variants, Monte-Carlo wrappers) clone a calibrated
//! solver instead of re-running the solve.

use crate::lifetime::{CellDesign, LifetimeSolver};
use std::sync::OnceLock;

/// The paper's anchor: the always-on balanced 45 nm cell lives 2.93
/// years (§IV-B1).
pub const REFERENCE_LIFETIME_YEARS: f64 = 2.93;

/// The calibrated 45 nm reference solver, solved once per process.
///
/// Identical (field-for-field) to
/// `LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93)`, so
/// results derived from it are bit-compatible with callers that
/// calibrate their own instance.
///
/// # Panics
///
/// Panics if the built-in reference design fails to calibrate, which
/// would mean the compiled-in constants are broken.
pub fn reference_45nm() -> &'static LifetimeSolver {
    static REFERENCE: OnceLock<LifetimeSolver> = OnceLock::new();
    REFERENCE.get_or_init(|| {
        LifetimeSolver::calibrated(CellDesign::default_45nm(), REFERENCE_LIFETIME_YEARS)
            .expect("the built-in 45 nm reference design must calibrate")
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_reference_equals_a_fresh_calibration() {
        let fresh =
            LifetimeSolver::calibrated(CellDesign::default_45nm(), REFERENCE_LIFETIME_YEARS)
                .unwrap();
        assert_eq!(reference_45nm(), &fresh);
    }

    #[test]
    fn repeated_calls_share_one_instance() {
        let a: *const LifetimeSolver = reference_45nm();
        let b: *const LifetimeSolver = reference_45nm();
        assert_eq!(a, b);
    }
}
