//! Error type for the NBTI model crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the NBTI characterization framework.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NbtiError {
    /// A probability parameter was outside `[0, 1]`.
    InvalidProbability {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A voltage parameter was non-positive or non-finite.
    InvalidVoltage {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A model parameter was outside its physical range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the accepted range.
        expected: &'static str,
    },
    /// The VTC/SNM numerical solver failed to bracket or converge.
    SolverDiverged {
        /// Which solver failed.
        context: &'static str,
    },
    /// The requested stress never degrades the cell to the failure
    /// criterion within the search horizon (e.g. a fully power-gated,
    /// never-active cell).
    NoFailureWithinHorizon {
        /// Search horizon in years.
        horizon_years: f64,
    },
    /// A lookup-table query was outside the tabulated grid.
    LutOutOfRange {
        /// Name of the axis that was exceeded.
        axis: &'static str,
        /// The rejected coordinate.
        value: f64,
    },
}

impl fmt::Display for NbtiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NbtiError::InvalidProbability { name, value } => {
                write!(f, "probability `{name}` = {value} is outside [0, 1]")
            }
            NbtiError::InvalidVoltage { name, value } => {
                write!(f, "voltage `{name}` = {value} must be finite and positive")
            }
            NbtiError::InvalidParameter {
                name,
                value,
                expected,
            } => {
                write!(
                    f,
                    "parameter `{name}` = {value} is invalid (expected {expected})"
                )
            }
            NbtiError::SolverDiverged { context } => {
                write!(f, "numerical solver failed to converge in {context}")
            }
            NbtiError::NoFailureWithinHorizon { horizon_years } => {
                write!(
                    f,
                    "cell never reaches the failure criterion within {horizon_years} years"
                )
            }
            NbtiError::LutOutOfRange { axis, value } => {
                write!(
                    f,
                    "lookup on axis `{axis}` = {value} is outside the tabulated grid"
                )
            }
        }
    }
}

impl Error for NbtiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = NbtiError::InvalidProbability {
            name: "p0",
            value: 1.5,
        };
        let s = e.to_string();
        assert!(s.contains("p0"));
        assert!(s.contains("1.5"));
        assert!(s.chars().next().unwrap().is_lowercase());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NbtiError>();
    }

    #[test]
    fn error_implements_std_error() {
        let e: Box<dyn Error> = Box::new(NbtiError::SolverDiverged { context: "vtc" });
        assert!(e.source().is_none());
    }
}
