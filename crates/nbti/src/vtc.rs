//! Numerical voltage-transfer-curve (VTC) solver for SRAM cell inverters.
//!
//! A 6T SRAM cell is two cross-coupled inverters plus two access nMOS
//! transistors. During a **read**, both bitlines are precharged to `Vdd` and
//! the wordline is high, so each storage node is additionally pulled toward
//! `Vdd` through its access transistor — the classic read-disturb condition
//! that makes the *read* SNM the worst-case stability metric (paper §IV-A,
//! ref. \[23\]).
//!
//! For one inverter with input `u` (the opposite storage node) and output
//! `v` (its own storage node), the node equation is
//!
//! ```text
//! I_pullup(u, v) + I_access(v) = I_pulldown(u, v)
//! ```
//!
//! The left side is non-increasing and the right side non-decreasing in `v`,
//! so the residual is monotone and a bisection finds the unique operating
//! point.

use crate::device::Mosfet;
use crate::error::NbtiError;

/// Relative voltage tolerance of the bisection, in volts.
const V_TOL: f64 = 1e-9;
/// Maximum bisection iterations (60 halvings of ~1 V ≈ 1e-18 V, ample).
const MAX_ITER: usize = 200;

/// One inverter of a 6T cell in the read condition (access device on,
/// bitline at `Vdd`).
///
/// # Examples
///
/// ```
/// use nbti_model::{CellDesign, ReadInverter};
///
/// let design = CellDesign::default_45nm();
/// let inv = ReadInverter::from_design(&design, 0.0);
/// // With the input low the output is pulled high:
/// let v_hi = inv.output(0.0).unwrap();
/// assert!(v_hi > 0.9 * design.vdd());
/// // With the input high the output sits at the read-disturb voltage,
/// // above ground but well below Vdd/2:
/// let v_lo = inv.output(design.vdd()).unwrap();
/// assert!(v_lo > 0.0 && v_lo < design.vdd() / 2.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ReadInverter {
    pullup: Mosfet,
    pulldown: Mosfet,
    access: Option<Mosfet>,
    vdd: f64,
}

impl ReadInverter {
    /// Creates an inverter from explicit devices and rail voltage.
    ///
    /// Pass `access: None` to model the *hold* condition (wordline low),
    /// `Some(_)` for the read condition with the bitline at `vdd`.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidVoltage`] if `vdd` is not finite and
    /// positive.
    pub fn new(
        pullup: Mosfet,
        pulldown: Mosfet,
        access: Option<Mosfet>,
        vdd: f64,
    ) -> Result<Self, NbtiError> {
        if !(vdd.is_finite() && vdd > 0.0) {
            return Err(NbtiError::InvalidVoltage {
                name: "vdd",
                value: vdd,
            });
        }
        Ok(Self {
            pullup,
            pulldown,
            access,
            vdd,
        })
    }

    /// Builds the read-condition inverter of a [`CellDesign`], with the
    /// pull-up pMOS aged by `delta_vth_p` volts.
    ///
    /// [`CellDesign`]: crate::lifetime::CellDesign
    pub fn from_design(design: &crate::lifetime::CellDesign, delta_vth_p: f64) -> Self {
        Self {
            pullup: design.pullup().with_vth_shift(delta_vth_p),
            pulldown: design.pulldown(),
            access: Some(design.access()),
            vdd: design.vdd(),
        }
    }

    /// Supply voltage in volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// KCL residual at output voltage `v` for input voltage `u`:
    /// current pushed into the node minus current pulled out. Positive
    /// residual means the node will rise.
    fn residual(&self, u: f64, v: f64) -> f64 {
        // Pull-up pMOS: source at Vdd, gate at u, drain at v.
        let i_up = self.pullup.drain_current(self.vdd - u, self.vdd - v);
        // Access nMOS: gate and drain (bitline) at Vdd, source at v.
        let i_acc = self
            .access
            .as_ref()
            .map(|a| a.drain_current(self.vdd - v, self.vdd - v))
            .unwrap_or(0.0);
        // Pull-down nMOS: gate at u, drain at v, source at ground.
        let i_dn = self.pulldown.drain_current(u, v);
        i_up + i_acc - i_dn
    }

    /// Solves the inverter output voltage for input `u` by bisection on the
    /// monotone KCL residual.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::SolverDiverged`] if the residual does not change
    /// sign over `[0, vdd]` within tolerance (never happens for physical
    /// device parameters; guarded for robustness).
    pub fn output(&self, u: f64) -> Result<f64, NbtiError> {
        let mut lo = 0.0_f64;
        let mut hi = self.vdd;
        let r_lo = self.residual(u, lo);
        let r_hi = self.residual(u, hi);
        // residual(lo) >= 0 (nothing can pull below ground) and
        // residual(hi) <= 0 (nothing can push above Vdd). If a degenerate
        // device set makes both zero, any point is an operating point.
        if r_lo < 0.0 {
            return Ok(0.0);
        }
        if r_hi > 0.0 {
            return Ok(self.vdd);
        }
        for _ in 0..MAX_ITER {
            let mid = 0.5 * (lo + hi);
            let r = self.residual(u, mid);
            if r > 0.0 {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < V_TOL {
                return Ok(0.5 * (lo + hi));
            }
        }
        Err(NbtiError::SolverDiverged {
            context: "inverter VTC bisection",
        })
    }
}

/// Dense sampling of an inverter VTC, reusable by the SNM extractor.
#[derive(Debug, Clone, PartialEq)]
pub struct VtcSolver {
    samples: Vec<(f64, f64)>,
    vdd: f64,
}

impl VtcSolver {
    /// Samples the VTC of `inverter` at `points` evenly spaced inputs over
    /// `[0, vdd]`.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from [`ReadInverter::output`]. Returns
    /// [`NbtiError::InvalidParameter`] if `points < 2`.
    pub fn sample(inverter: &ReadInverter, points: usize) -> Result<Self, NbtiError> {
        if points < 2 {
            return Err(NbtiError::InvalidParameter {
                name: "points",
                value: points as f64,
                expected: "at least 2 sample points",
            });
        }
        let vdd = inverter.vdd();
        let mut samples = Vec::with_capacity(points);
        for i in 0..points {
            let u = vdd * i as f64 / (points - 1) as f64;
            samples.push((u, inverter.output(u)?));
        }
        Ok(Self { samples, vdd })
    }

    /// The sampled `(input, output)` pairs, ordered by input.
    pub fn samples(&self) -> &[(f64, f64)] {
        &self.samples
    }

    /// Supply voltage the curve was sampled at.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Linear interpolation of the output at input `u` (clamped to the
    /// sampled range).
    pub fn interpolate(&self, u: f64) -> f64 {
        let s = &self.samples;
        if u <= s[0].0 {
            return s[0].1;
        }
        if u >= s[s.len() - 1].0 {
            return s[s.len() - 1].1;
        }
        // Uniform grid: locate the segment directly.
        let step = (s[s.len() - 1].0 - s[0].0) / (s.len() - 1) as f64;
        let idx = ((u - s[0].0) / step) as usize;
        let idx = idx.min(s.len() - 2);
        let (u0, v0) = s[idx];
        let (u1, v1) = s[idx + 1];
        if u1 == u0 {
            v0
        } else {
            v0 + (v1 - v0) * (u - u0) / (u1 - u0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::CellDesign;

    fn read_inverter() -> ReadInverter {
        ReadInverter::from_design(&CellDesign::default_45nm(), 0.0)
    }

    #[test]
    fn vtc_is_monotone_decreasing() {
        let inv = read_inverter();
        let vtc = VtcSolver::sample(&inv, 200).unwrap();
        for w in vtc.samples().windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-7, "VTC must be non-increasing: {w:?}");
        }
    }

    #[test]
    fn read_disturb_raises_low_node() {
        let design = CellDesign::default_45nm();
        let read = ReadInverter::from_design(&design, 0.0);
        let hold =
            ReadInverter::new(design.pullup(), design.pulldown(), None, design.vdd()).unwrap();
        let v_read = read.output(design.vdd()).unwrap();
        let v_hold = hold.output(design.vdd()).unwrap();
        assert!(v_hold < 1e-6, "hold low level should be ~0, got {v_hold}");
        assert!(
            v_read > 0.02,
            "read-disturb voltage should be clearly above ground, got {v_read}"
        );
    }

    #[test]
    fn output_endpoints_are_sane() {
        let inv = read_inverter();
        let hi = inv.output(0.0).unwrap();
        let lo = inv.output(inv.vdd()).unwrap();
        assert!(hi > 0.9 * inv.vdd());
        assert!(lo < 0.5 * inv.vdd());
        assert!(hi > lo);
    }

    #[test]
    fn aged_pullup_weakens_high_output_transition() {
        let design = CellDesign::default_45nm();
        let fresh = ReadInverter::from_design(&design, 0.0);
        let aged = ReadInverter::from_design(&design, 0.10);
        // At mid-input the aged pull-up fights the pull-down less, so the
        // output is lower (the transition shifts left).
        let mid = 0.5 * design.vdd();
        assert!(aged.output(mid).unwrap() <= fresh.output(mid).unwrap() + 1e-9);
    }

    #[test]
    fn interpolation_matches_samples_and_clamps() {
        let inv = read_inverter();
        let vtc = VtcSolver::sample(&inv, 64).unwrap();
        let (u3, v3) = vtc.samples()[3];
        assert!((vtc.interpolate(u3) - v3).abs() < 1e-12);
        assert_eq!(vtc.interpolate(-1.0), vtc.samples()[0].1);
        assert_eq!(
            vtc.interpolate(10.0),
            vtc.samples()[vtc.samples().len() - 1].1
        );
    }

    #[test]
    fn sample_rejects_degenerate_grid() {
        let inv = read_inverter();
        assert!(matches!(
            VtcSolver::sample(&inv, 1),
            Err(NbtiError::InvalidParameter { .. })
        ));
    }
}
