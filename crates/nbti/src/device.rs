//! Alpha-power-law MOSFET model (Sakurai–Newton).
//!
//! The classic SPICE level-1 square-law model is a poor fit below 100 nm
//! where carrier velocity saturation flattens the I–V curve; the
//! Sakurai–Newton *alpha-power law* captures this with a single exponent
//! `alpha` (≈ 2.0 for long channel, ≈ 1.2–1.4 at 45 nm):
//!
//! ```text
//! I_dsat  = k · (V_gs − V_th)^alpha
//! V_dsat  = kv · (V_gs − V_th)^(alpha/2)
//! I_d     = I_dsat · (2 − V_ds/V_dsat) · (V_ds/V_dsat)      (V_ds < V_dsat)
//! ```
//!
//! Voltages are handled in magnitude form: for a pMOS device pass
//! `v_gs = V_sg` and `v_ds = V_sd` (both non-negative). This keeps the cell
//! KCL solver sign-free.

use crate::error::NbtiError;

/// Polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosfetKind {
    /// n-channel device (pull-down / access transistors of a 6T cell).
    Nmos,
    /// p-channel device (pull-up transistors of a 6T cell; the NBTI victims).
    Pmos,
}

/// A MOSFET characterized by the alpha-power law.
///
/// The model is evaluated in magnitude space, so one struct serves both
/// polarities; [`MosfetKind`] is retained for reporting and for deciding
/// which devices age under NBTI.
///
/// # Examples
///
/// ```
/// use nbti_model::{Mosfet, MosfetKind};
///
/// let nmos = Mosfet::new(MosfetKind::Nmos, 0.32, 3.2e-4, 1.30).unwrap();
/// // Cut off below threshold:
/// assert_eq!(nmos.drain_current(0.2, 1.1), 0.0);
/// // Conducting above threshold:
/// assert!(nmos.drain_current(1.1, 1.1) > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mosfet {
    kind: MosfetKind,
    vth: f64,
    k: f64,
    alpha: f64,
    /// Saturation-voltage coefficient `kv` (V^(1−alpha/2)).
    kv: f64,
}

impl Mosfet {
    /// Creates a device with threshold `vth` (V, magnitude), transconductance
    /// `k` (A/V^alpha) and velocity-saturation exponent `alpha`.
    ///
    /// The saturation-voltage coefficient defaults to `kv = 0.9`.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if `vth` is not in `(0, 2)` V,
    /// `k` is not positive, or `alpha` is not in `[1, 2]`.
    pub fn new(kind: MosfetKind, vth: f64, k: f64, alpha: f64) -> Result<Self, NbtiError> {
        if !(vth.is_finite() && vth > 0.0 && vth < 2.0) {
            return Err(NbtiError::InvalidParameter {
                name: "vth",
                value: vth,
                expected: "0 < vth < 2 V",
            });
        }
        if !(k.is_finite() && k > 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "k",
                value: k,
                expected: "k > 0",
            });
        }
        if !(1.0..=2.0).contains(&alpha) {
            return Err(NbtiError::InvalidParameter {
                name: "alpha",
                value: alpha,
                expected: "1 <= alpha <= 2",
            });
        }
        Ok(Self {
            kind,
            vth,
            k,
            alpha,
            kv: 0.9,
        })
    }

    /// Polarity of the device.
    pub fn kind(&self) -> MosfetKind {
        self.kind
    }

    /// Threshold voltage magnitude in volts.
    pub fn vth(&self) -> f64 {
        self.vth
    }

    /// Transconductance coefficient `k` in A/V^alpha.
    pub fn k(&self) -> f64 {
        self.k
    }

    /// Velocity-saturation exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Returns a copy of this device with its threshold shifted by
    /// `delta_vth` volts (an NBTI-aged pMOS has a *larger* |Vth|).
    ///
    /// The shift is clamped so the resulting threshold stays positive.
    #[must_use]
    pub fn with_vth_shift(&self, delta_vth: f64) -> Self {
        let mut aged = *self;
        aged.vth = (self.vth + delta_vth).max(1e-6);
        aged
    }

    /// Gate overdrive `max(v_gs − vth, 0)` in volts (magnitudes).
    pub fn overdrive(&self, v_gs: f64) -> f64 {
        (v_gs - self.vth).max(0.0)
    }

    /// Drain current in amperes for gate-source and drain-source voltage
    /// *magnitudes* (both ≥ 0; negative inputs are treated as 0).
    ///
    /// Piecewise: cutoff below threshold, alpha-power triode below
    /// `V_dsat`, constant saturation current above (channel-length
    /// modulation is neglected — the SNM solver needs monotonicity, not
    /// output-resistance fidelity).
    pub fn drain_current(&self, v_gs: f64, v_ds: f64) -> f64 {
        let v_ds = v_ds.max(0.0);
        let od = self.overdrive(v_gs);
        if od <= 0.0 || v_ds == 0.0 {
            return 0.0;
        }
        let i_dsat = self.k * od.powf(self.alpha);
        let v_dsat = self.kv * od.powf(self.alpha / 2.0);
        if v_ds >= v_dsat {
            i_dsat
        } else {
            let x = v_ds / v_dsat;
            i_dsat * (2.0 - x) * x
        }
    }

    /// Saturation current at the given gate overdrive voltage.
    pub fn saturation_current(&self, v_gs: f64) -> f64 {
        let od = self.overdrive(v_gs);
        if od <= 0.0 {
            0.0
        } else {
            self.k * od.powf(self.alpha)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos() -> Mosfet {
        Mosfet::new(MosfetKind::Nmos, 0.32, 3.2e-4, 1.3).unwrap()
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(Mosfet::new(MosfetKind::Nmos, -0.1, 1e-4, 1.3).is_err());
        assert!(Mosfet::new(MosfetKind::Nmos, 0.3, 0.0, 1.3).is_err());
        assert!(Mosfet::new(MosfetKind::Nmos, 0.3, 1e-4, 0.9).is_err());
        assert!(Mosfet::new(MosfetKind::Nmos, 0.3, 1e-4, 2.5).is_err());
        assert!(Mosfet::new(MosfetKind::Nmos, f64::NAN, 1e-4, 1.3).is_err());
    }

    #[test]
    fn cutoff_region_yields_zero_current() {
        let d = nmos();
        assert_eq!(d.drain_current(0.0, 1.1), 0.0);
        assert_eq!(d.drain_current(0.31, 0.5), 0.0);
        assert_eq!(d.drain_current(1.1, 0.0), 0.0);
    }

    #[test]
    fn current_is_monotone_in_vgs() {
        let d = nmos();
        let mut last = 0.0;
        for i in 0..=20 {
            let v_gs = 0.3 + 0.04 * i as f64;
            let i_d = d.drain_current(v_gs, 1.1);
            assert!(i_d >= last, "current must not decrease with v_gs");
            last = i_d;
        }
    }

    #[test]
    fn current_is_monotone_in_vds_and_saturates() {
        let d = nmos();
        let mut last = 0.0;
        for i in 0..=110 {
            let v_ds = 0.01 * i as f64;
            let i_d = d.drain_current(1.1, v_ds);
            assert!(i_d + 1e-15 >= last, "current must not decrease with v_ds");
            last = i_d;
        }
        // Deep in saturation the current equals the saturation current.
        assert!((d.drain_current(1.1, 1.1) - d.saturation_current(1.1)).abs() < 1e-12);
    }

    #[test]
    fn triode_saturation_boundary_is_continuous() {
        let d = nmos();
        let od = d.overdrive(1.1);
        let v_dsat = 0.9 * od.powf(d.alpha() / 2.0);
        let below = d.drain_current(1.1, v_dsat - 1e-9);
        let above = d.drain_current(1.1, v_dsat + 1e-9);
        assert!((below - above).abs() < 1e-9 * d.saturation_current(1.1).max(1.0));
    }

    #[test]
    fn vth_shift_reduces_current() {
        let fresh = nmos();
        let aged = fresh.with_vth_shift(0.05);
        assert!(aged.vth() > fresh.vth());
        assert!(aged.drain_current(1.1, 1.1) < fresh.drain_current(1.1, 1.1));
    }

    #[test]
    fn vth_shift_clamps_to_positive() {
        let d = nmos().with_vth_shift(-10.0);
        assert!(d.vth() > 0.0);
    }

    #[test]
    fn negative_vds_treated_as_zero() {
        let d = nmos();
        assert_eq!(d.drain_current(1.1, -0.5), 0.0);
    }
}
