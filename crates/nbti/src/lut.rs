//! Lifetime characterization lookup table.
//!
//! The paper's flow runs its SPICE framework offline and stores the results
//! "in a lookup table, which is used by the cache simulator to estimate the
//! aging of the cache banks" (§IV-A). This module is that artifact: a dense
//! `(p0 × sleep-fraction)` grid of lifetimes with bilinear interpolation,
//! built once from a [`LifetimeSolver`] and then queried millions of times
//! by the architectural simulation at negligible cost.

use crate::error::NbtiError;
use crate::lifetime::LifetimeSolver;
use crate::stress::{SleepMode, StressProfile};

/// Lifetime lookup table over `(p0, sleep_fraction)`.
///
/// # Examples
///
/// ```
/// use nbti_model::{AgingLut, CellDesign, LifetimeSolver, SleepMode};
///
/// # fn main() -> Result<(), nbti_model::NbtiError> {
/// let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93)?;
/// let lut = AgingLut::build(&solver, SleepMode::VoltageScaled, 9, 9, 500.0)?;
/// // Balanced always-on cell: the calibration anchor.
/// let base = lut.lifetime_years(0.5, 0.0)?;
/// assert!((base - 2.93).abs() < 0.05);
/// // More sleep, longer life:
/// assert!(lut.lifetime_years(0.5, 0.8)? > base);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AgingLut {
    p0_axis: Vec<f64>,
    sleep_axis: Vec<f64>,
    /// Row-major: `values[i_p0 * sleep_axis.len() + i_sleep]`.
    values: Vec<f64>,
    mode: SleepMode,
    cap_years: f64,
}

impl AgingLut {
    /// Builds the table by characterizing `p0_points × sleep_points`
    /// profiles with `solver`.
    ///
    /// Infinite lifetimes (possible under power gating) are clamped to
    /// `cap_years` so interpolation stays finite; queries report the clamp
    /// faithfully.
    ///
    /// The builder exploits the solver structure: the critical threshold
    /// shift depends only on the `p0` row, so each row costs one SNM
    /// bisection regardless of the number of sleep points.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if either axis has fewer
    /// than 2 points or `cap_years` is not positive; propagates solver
    /// errors.
    pub fn build(
        solver: &LifetimeSolver,
        mode: SleepMode,
        p0_points: usize,
        sleep_points: usize,
        cap_years: f64,
    ) -> Result<Self, NbtiError> {
        if p0_points < 2 {
            return Err(NbtiError::InvalidParameter {
                name: "p0_points",
                value: p0_points as f64,
                expected: "at least 2 grid points",
            });
        }
        if sleep_points < 2 {
            return Err(NbtiError::InvalidParameter {
                name: "sleep_points",
                value: sleep_points as f64,
                expected: "at least 2 grid points",
            });
        }
        if !(cap_years.is_finite() && cap_years > 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "cap_years",
                value: cap_years,
                expected: "cap_years > 0",
            });
        }
        let p0_axis: Vec<f64> = (0..p0_points)
            .map(|i| i as f64 / (p0_points - 1) as f64)
            .collect();
        let sleep_axis: Vec<f64> = (0..sleep_points)
            .map(|i| i as f64 / (sleep_points - 1) as f64)
            .collect();
        let n = solver.rd().n();
        let mut values = Vec::with_capacity(p0_points * sleep_points);
        for &p0 in &p0_axis {
            // One bisection per row: the per-device duty ratio fixes the
            // shape of the failure condition independent of sleep.
            let duty_max = p0.max(1.0 - p0);
            let duty_min = p0.min(1.0 - p0);
            let minor_ratio = if duty_max == 0.0 {
                1.0
            } else {
                (duty_min / duty_max).powf(n)
            };
            let dv_star = solver.critical_shift(minor_ratio)?;
            let t_eff_star = solver.rd().effective_years_for(dv_star);
            for &s in &sleep_axis {
                let profile = StressProfile::new(p0, s, mode)?;
                let (ra, rb) = solver.device_rates(&profile);
                let r_max = ra.max(rb);
                let lt = if r_max <= 0.0 {
                    f64::INFINITY
                } else {
                    t_eff_star / r_max
                };
                values.push(lt.min(cap_years));
            }
        }
        Ok(Self {
            p0_axis,
            sleep_axis,
            values,
            mode,
            cap_years,
        })
    }

    /// Constructs a table from explicit axes and values (row-major over
    /// `p0` then `sleep`). Primarily for tests and deserialization.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if the axes are not strictly
    /// increasing, are shorter than 2, or the value count mismatches.
    pub fn from_grid(
        p0_axis: Vec<f64>,
        sleep_axis: Vec<f64>,
        values: Vec<f64>,
        mode: SleepMode,
    ) -> Result<Self, NbtiError> {
        if p0_axis.len() < 2 || sleep_axis.len() < 2 {
            return Err(NbtiError::InvalidParameter {
                name: "axes",
                value: p0_axis.len().min(sleep_axis.len()) as f64,
                expected: "axes with at least 2 points",
            });
        }
        let increasing = |a: &[f64]| a.windows(2).all(|w| w[1] > w[0]);
        if !increasing(&p0_axis) || !increasing(&sleep_axis) {
            return Err(NbtiError::InvalidParameter {
                name: "axes",
                value: f64::NAN,
                expected: "strictly increasing axes",
            });
        }
        if values.len() != p0_axis.len() * sleep_axis.len() {
            return Err(NbtiError::InvalidParameter {
                name: "values",
                value: values.len() as f64,
                expected: "p0_axis.len() * sleep_axis.len() values",
            });
        }
        let cap_years = values.iter().cloned().fold(0.0, f64::max);
        Ok(Self {
            p0_axis,
            sleep_axis,
            values,
            mode,
            cap_years,
        })
    }

    /// The sleep mode the table was characterized for.
    pub fn mode(&self) -> SleepMode {
        self.mode
    }

    /// The clamp applied to unbounded lifetimes, in years.
    pub fn cap_years(&self) -> f64 {
        self.cap_years
    }

    /// Grid dimensions `(p0_points, sleep_points)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.p0_axis.len(), self.sleep_axis.len())
    }

    /// Bilinear lifetime lookup at `(p0, sleep_fraction)`.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::LutOutOfRange`] if either coordinate lies
    /// outside the tabulated axes (no extrapolation).
    pub fn lifetime_years(&self, p0: f64, sleep_fraction: f64) -> Result<f64, NbtiError> {
        let (i, tp) = Self::locate(&self.p0_axis, p0, "p0")?;
        let (j, ts) = Self::locate(&self.sleep_axis, sleep_fraction, "sleep_fraction")?;
        let w = self.sleep_axis.len();
        let v00 = self.values[i * w + j];
        let v01 = self.values[i * w + j + 1];
        let v10 = self.values[(i + 1) * w + j];
        let v11 = self.values[(i + 1) * w + j + 1];
        let v0 = v00 + (v01 - v00) * ts;
        let v1 = v10 + (v11 - v10) * ts;
        Ok(v0 + (v1 - v0) * tp)
    }

    /// Locates `x` on `axis`: returns the lower cell index and the
    /// interpolation weight within the cell.
    fn locate(axis: &[f64], x: f64, name: &'static str) -> Result<(usize, f64), NbtiError> {
        let first = axis[0];
        let last = axis[axis.len() - 1];
        if !x.is_finite() || x < first - 1e-12 || x > last + 1e-12 {
            return Err(NbtiError::LutOutOfRange {
                axis: name,
                value: x,
            });
        }
        let x = x.clamp(first, last);
        // Binary search for the containing cell.
        let mut lo = 0usize;
        let mut hi = axis.len() - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if axis[mid] <= x {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let t = (x - axis[lo]) / (axis[lo + 1] - axis[lo]);
        Ok((lo, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lifetime::CellDesign;

    fn lut() -> AgingLut {
        let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap();
        AgingLut::build(&solver, SleepMode::VoltageScaled, 9, 9, 500.0).unwrap()
    }

    #[test]
    fn lookup_matches_direct_solve_on_and_off_grid() {
        let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap();
        let lut = lut();
        for &(p0, s) in &[(0.5, 0.0), (0.5, 0.5), (0.25, 0.33), (0.8, 0.9)] {
            let direct = solver
                .lifetime_years(&StressProfile::new(p0, s, SleepMode::VoltageScaled).unwrap())
                .unwrap();
            let interp = lut.lifetime_years(p0, s).unwrap();
            let rel = (direct - interp).abs() / direct;
            assert!(
                rel < 0.05,
                "LUT vs direct at ({p0}, {s}): {interp} vs {direct} (rel {rel})"
            );
        }
    }

    #[test]
    fn out_of_range_is_rejected() {
        let lut = lut();
        assert!(matches!(
            lut.lifetime_years(-0.1, 0.5),
            Err(NbtiError::LutOutOfRange { .. })
        ));
        assert!(matches!(
            lut.lifetime_years(0.5, 1.1),
            Err(NbtiError::LutOutOfRange { .. })
        ));
        assert!(lut.lifetime_years(f64::NAN, 0.5).is_err());
    }

    #[test]
    fn monotone_in_sleep_along_grid() {
        let lut = lut();
        let mut last = 0.0;
        for i in 0..=8 {
            let s = i as f64 / 8.0;
            let lt = lut.lifetime_years(0.5, s).unwrap();
            assert!(lt >= last, "lifetime must grow with sleep in the LUT");
            last = lt;
        }
    }

    #[test]
    fn power_gated_lut_saturates_at_cap() {
        let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap();
        let lut = AgingLut::build(&solver, SleepMode::power_gated(), 5, 5, 100.0).unwrap();
        let lt = lut.lifetime_years(0.5, 1.0).unwrap();
        assert!((lt - 100.0).abs() < 1e-9, "gated idle cell clamps to cap");
    }

    #[test]
    fn from_grid_validates() {
        let ok = AgingLut::from_grid(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 2.0, 3.0, 4.0],
            SleepMode::VoltageScaled,
        );
        assert!(ok.is_ok());
        assert!(AgingLut::from_grid(
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 2.0, 3.0, 4.0],
            SleepMode::VoltageScaled,
        )
        .is_err());
        assert!(AgingLut::from_grid(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![1.0, 2.0],
            SleepMode::VoltageScaled,
        )
        .is_err());
    }

    #[test]
    fn bilinear_interpolation_is_exact_for_bilinear_data() {
        // values = 1 + 2*p0 + 3*s (+0*p0*s) is reproduced exactly.
        let p0_axis = vec![0.0, 0.5, 1.0];
        let s_axis = vec![0.0, 0.5, 1.0];
        let mut values = Vec::new();
        for &p in &p0_axis {
            for &s in &s_axis {
                values.push(1.0 + 2.0 * p + 3.0 * s);
            }
        }
        let lut = AgingLut::from_grid(p0_axis, s_axis, values, SleepMode::VoltageScaled).unwrap();
        for &(p, s) in &[(0.1, 0.9), (0.33, 0.66), (0.75, 0.25)] {
            let got = lut.lifetime_years(p, s).unwrap();
            let want = 1.0 + 2.0 * p + 3.0 * s;
            assert!((got - want).abs() < 1e-12, "({p},{s}): {got} vs {want}");
        }
    }

    #[test]
    fn build_rejects_degenerate_grids() {
        let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap();
        assert!(AgingLut::build(&solver, SleepMode::VoltageScaled, 1, 5, 100.0).is_err());
        assert!(AgingLut::build(&solver, SleepMode::VoltageScaled, 5, 1, 100.0).is_err());
        assert!(AgingLut::build(&solver, SleepMode::VoltageScaled, 5, 5, 0.0).is_err());
    }
}
