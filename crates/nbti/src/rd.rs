//! Long-term reaction–diffusion NBTI threshold-drift model.
//!
//! NBTI traps interface charges in a pMOS under negative gate bias
//! (`V_gs < 0`); the threshold voltage magnitude drifts as a fractional
//! power of stress time. The long-term reaction–diffusion (R–D) solution
//! for H₂ diffusion gives the widely used form (refs. \[1\], \[4\], \[23\] of the
//! paper):
//!
//! ```text
//! ΔVth(t) = K(V, T) · t_eff^n          n = 1/6
//! K(V, T) = K_nom · a_V(V) · a_T(T)
//! a_V(V)  = ((V − |Vth,p|) / (Vdd − |Vth,p|))^Γ        (power-law field acceleration)
//! a_T(T)  = exp(−(Ea/k_B) · (1/T − 1/T_ref))           (Arrhenius)
//! ```
//!
//! `t_eff` is the *effective* stress time: wall-clock time scaled by the
//! fraction of time under stress and by the acceleration of the applied
//! voltage. Alternating stress/recovery phases are absorbed into `t_eff`
//! (the standard quasi-static long-term approximation), which is exactly
//! the `(p0, Psleep)` keying the paper's characterization LUT uses.

use crate::error::NbtiError;

/// Boltzmann constant in eV/K.
const K_B_EV: f64 = 8.617_333_262e-5;

/// Long-term R–D NBTI model with voltage and temperature acceleration.
///
/// # Examples
///
/// ```
/// use nbti_model::RdModel;
///
/// let rd = RdModel::default_45nm();
/// // Drift follows the t^(1/6) power law:
/// let v1 = rd.delta_vth(1.0);
/// let v64 = rd.delta_vth(64.0);
/// assert!((v64 / v1 - 2.0).abs() < 1e-9); // 64^(1/6) = 2
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RdModel {
    k_nom: f64,
    n: f64,
    gamma: f64,
    ea_ev: f64,
    temp_ref_k: f64,
    vdd_nom: f64,
    vth_p: f64,
}

impl RdModel {
    /// Creates a model.
    ///
    /// * `k_nom` — drift coefficient at nominal voltage/temperature, in
    ///   volts per `year^n`.
    /// * `n` — time exponent (1/6 for H₂ diffusion).
    /// * `gamma` — voltage-acceleration exponent.
    /// * `ea_ev` — activation energy in eV.
    /// * `temp_ref_k` — reference temperature in kelvin.
    /// * `vdd_nom` — nominal stress voltage in volts.
    /// * `vth_p` — pMOS threshold magnitude in volts.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] for non-physical values.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        k_nom: f64,
        n: f64,
        gamma: f64,
        ea_ev: f64,
        temp_ref_k: f64,
        vdd_nom: f64,
        vth_p: f64,
    ) -> Result<Self, NbtiError> {
        if !(k_nom.is_finite() && k_nom > 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "k_nom",
                value: k_nom,
                expected: "k_nom > 0",
            });
        }
        if !(0.0 < n && n < 1.0) {
            return Err(NbtiError::InvalidParameter {
                name: "n",
                value: n,
                expected: "0 < n < 1",
            });
        }
        if !(gamma.is_finite() && gamma >= 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "gamma",
                value: gamma,
                expected: "gamma >= 0",
            });
        }
        if !(ea_ev.is_finite() && ea_ev >= 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "ea_ev",
                value: ea_ev,
                expected: "ea_ev >= 0",
            });
        }
        if !(temp_ref_k.is_finite() && temp_ref_k > 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "temp_ref_k",
                value: temp_ref_k,
                expected: "temp_ref_k > 0",
            });
        }
        if !(vdd_nom.is_finite() && vdd_nom > vth_p && vth_p > 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "vdd_nom/vth_p",
                value: vdd_nom,
                expected: "vdd_nom > vth_p > 0",
            });
        }
        Ok(Self {
            k_nom,
            n,
            gamma,
            ea_ev,
            temp_ref_k,
            vdd_nom,
            vth_p,
        })
    }

    /// A 45 nm-flavoured default: `n = 1/6`, `Γ = 2`, `Ea = 0.49 eV`,
    /// `T_ref = 358 K` (85 °C), `Vdd = 1.1 V`, `|Vth,p| = 0.35 V`. The
    /// nominal drift coefficient is a placeholder that
    /// [`LifetimeSolver::calibrated`](crate::lifetime::LifetimeSolver::calibrated)
    /// replaces to pin the paper's 2.93-year reference cell lifetime.
    pub fn default_45nm() -> Self {
        Self::new(0.040, 1.0 / 6.0, 2.0, 0.49, 358.0, 1.1, 0.35)
            .expect("default parameters are valid")
    }

    /// Returns a copy with a different nominal drift coefficient (used by
    /// lifetime calibration).
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidParameter`] if `k_nom` is not positive.
    pub fn with_k_nom(&self, k_nom: f64) -> Result<Self, NbtiError> {
        if !(k_nom.is_finite() && k_nom > 0.0) {
            return Err(NbtiError::InvalidParameter {
                name: "k_nom",
                value: k_nom,
                expected: "k_nom > 0",
            });
        }
        let mut m = self.clone();
        m.k_nom = k_nom;
        Ok(m)
    }

    /// Nominal drift coefficient (V / year^n).
    pub fn k_nom(&self) -> f64 {
        self.k_nom
    }

    /// Time exponent `n`.
    pub fn n(&self) -> f64 {
        self.n
    }

    /// Voltage-acceleration exponent `Γ`.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// Nominal stress voltage (V).
    pub fn vdd_nom(&self) -> f64 {
        self.vdd_nom
    }

    /// pMOS threshold magnitude (V).
    pub fn vth_p(&self) -> f64 {
        self.vth_p
    }

    /// Voltage-acceleration factor relative to the nominal stress voltage.
    ///
    /// Returns 0 for voltages at or below the pMOS threshold (no channel
    /// inversion, no interface-trap generation) and 1 at `vdd_nom`.
    pub fn voltage_acceleration(&self, v: f64) -> f64 {
        if v <= self.vth_p {
            return 0.0;
        }
        ((v - self.vth_p) / (self.vdd_nom - self.vth_p)).powf(self.gamma)
    }

    /// Temperature-acceleration factor relative to the reference
    /// temperature (Arrhenius).
    pub fn temperature_acceleration(&self, temp_k: f64) -> f64 {
        (-(self.ea_ev / K_B_EV) * (1.0 / temp_k - 1.0 / self.temp_ref_k)).exp()
    }

    /// Threshold drift in volts after `t_eff_years` of *effective* stress
    /// at nominal voltage/temperature.
    pub fn delta_vth(&self, t_eff_years: f64) -> f64 {
        if t_eff_years <= 0.0 {
            0.0
        } else {
            self.k_nom * t_eff_years.powf(self.n)
        }
    }

    /// Inverse of [`delta_vth`](Self::delta_vth): effective stress years
    /// needed to accumulate the given drift.
    pub fn effective_years_for(&self, delta_vth: f64) -> f64 {
        if delta_vth <= 0.0 {
            0.0
        } else {
            (delta_vth / self.k_nom).powf(1.0 / self.n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_round_trips() {
        let rd = RdModel::default_45nm();
        let dv = rd.delta_vth(2.93);
        let t = rd.effective_years_for(dv);
        assert!((t - 2.93).abs() < 1e-9);
    }

    #[test]
    fn drift_is_monotone_and_concave() {
        let rd = RdModel::default_45nm();
        let (a, b, c) = (rd.delta_vth(1.0), rd.delta_vth(2.0), rd.delta_vth(4.0));
        assert!(a < b && b < c);
        // Concavity of t^n, n < 1: doubling time gains less than doubling drift.
        assert!(b / a < 2.0);
        assert!((b / a - c / b).abs() < 1e-12, "power law is scale-free");
    }

    #[test]
    fn voltage_acceleration_anchors() {
        let rd = RdModel::default_45nm();
        assert_eq!(rd.voltage_acceleration(0.2), 0.0);
        assert_eq!(rd.voltage_acceleration(0.35), 0.0);
        assert!((rd.voltage_acceleration(1.1) - 1.0).abs() < 1e-12);
        // The paper's drowsy voltage decelerates aging substantially.
        let r = rd.voltage_acceleration(0.75);
        assert!(r > 0.1 && r < 0.5, "drowsy acceleration ratio = {r}");
    }

    #[test]
    fn temperature_acceleration_anchors() {
        let rd = RdModel::default_45nm();
        assert!((rd.temperature_acceleration(358.0) - 1.0).abs() < 1e-12);
        assert!(
            rd.temperature_acceleration(398.0) > 1.0,
            "hotter ages faster"
        );
        assert!(
            rd.temperature_acceleration(318.0) < 1.0,
            "cooler ages slower"
        );
    }

    #[test]
    fn rejects_non_physical_parameters() {
        assert!(RdModel::new(-1.0, 1.0 / 6.0, 2.0, 0.5, 358.0, 1.1, 0.35).is_err());
        assert!(RdModel::new(0.04, 1.5, 2.0, 0.5, 358.0, 1.1, 0.35).is_err());
        assert!(RdModel::new(0.04, 1.0 / 6.0, -0.5, 0.5, 358.0, 1.1, 0.35).is_err());
        assert!(RdModel::new(0.04, 1.0 / 6.0, 2.0, 0.5, 358.0, 0.3, 0.35).is_err());
        assert!(RdModel::new(0.04, 1.0 / 6.0, 2.0, 0.5, -1.0, 1.1, 0.35).is_err());
    }

    #[test]
    fn zero_and_negative_times_give_zero_drift() {
        let rd = RdModel::default_45nm();
        assert_eq!(rd.delta_vth(0.0), 0.0);
        assert_eq!(rd.delta_vth(-1.0), 0.0);
        assert_eq!(rd.effective_years_for(0.0), 0.0);
    }
}
