//! Data-retention-voltage (DRV) analysis for the drowsy state.
//!
//! Voltage-scaled sleep only works if the lowered rail still lets the cell
//! *hold* its datum: below the DRV the hold SNM collapses and the drowsy
//! state destroys state, defeating the paper's argument for preferring
//! voltage scaling over power gating (§III-A1). Aging raises the DRV over
//! the cache's life, so a drowsy voltage chosen at time zero must keep
//! margin against the *end-of-life* DRV. This module computes:
//!
//! * the hold SNM at an arbitrary retention voltage and aging state, and
//! * the minimum retention voltage that keeps a required hold margin,
//!   fresh or aged.

use crate::error::NbtiError;
use crate::lifetime::CellDesign;
use crate::snm::SnmSolver;
use crate::vtc::ReadInverter;

/// Default hold-margin requirement: 40 mV of hold SNM.
pub const DEFAULT_MARGIN_V: f64 = 0.040;

/// Data-retention analysis for one cell design.
///
/// # Examples
///
/// ```
/// use nbti_model::{CellDesign, DrvAnalysis};
///
/// # fn main() -> Result<(), nbti_model::NbtiError> {
/// let drv = DrvAnalysis::new(CellDesign::default_45nm());
/// // The paper's 0.75 V drowsy rail holds data comfortably when fresh...
/// assert!(drv.holds_at(0.75, 0.0, 0.0)?);
/// // ...and the minimum retention voltage is far below it.
/// let min_v = drv.min_retention_voltage(0.0, 0.0)?;
/// assert!(min_v < 0.75);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DrvAnalysis {
    design: CellDesign,
    snm: SnmSolver,
    margin_v: f64,
}

impl DrvAnalysis {
    /// Creates the analysis with the default 40 mV hold-margin
    /// requirement.
    pub fn new(design: CellDesign) -> Self {
        Self {
            design,
            snm: SnmSolver::new(),
            margin_v: DEFAULT_MARGIN_V,
        }
    }

    /// Overrides the required hold margin, in volts.
    ///
    /// # Panics
    ///
    /// Panics if `margin_v` is not positive.
    #[must_use]
    pub fn with_margin(mut self, margin_v: f64) -> Self {
        assert!(margin_v > 0.0, "margin must be positive");
        self.margin_v = margin_v;
        self
    }

    /// The required hold margin, volts.
    pub fn margin_v(&self) -> f64 {
        self.margin_v
    }

    /// Hold SNM (wordline off — no access transistors) at retention
    /// voltage `v_ret` with the two pull-ups aged by `dv_a`, `dv_b` volts.
    ///
    /// # Errors
    ///
    /// Propagates VTC solver failures or an invalid (non-positive)
    /// retention voltage.
    pub fn hold_snm(&self, v_ret: f64, dv_a: f64, dv_b: f64) -> Result<f64, NbtiError> {
        let inv = |dv: f64| -> Result<ReadInverter, NbtiError> {
            ReadInverter::new(
                self.design.pullup().with_vth_shift(dv),
                self.design.pulldown(),
                None, // hold condition: access devices off
                v_ret,
            )
        };
        Ok(self.snm.extract(&inv(dv_a)?, &inv(dv_b)?)?.snm)
    }

    /// Whether the cell holds data (hold SNM ≥ margin) at `v_ret` with
    /// the given aging.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn holds_at(&self, v_ret: f64, dv_a: f64, dv_b: f64) -> Result<bool, NbtiError> {
        Ok(self.hold_snm(v_ret, dv_a, dv_b)? >= self.margin_v)
    }

    /// The minimum retention voltage keeping the hold margin, via
    /// bisection over `(0.1 V, Vdd)`.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::SolverDiverged`] if even the full rail cannot
    /// hold the margin (a destroyed cell).
    pub fn min_retention_voltage(&self, dv_a: f64, dv_b: f64) -> Result<f64, NbtiError> {
        let mut lo = 0.1_f64;
        let mut hi = self.design.vdd();
        if !self.holds_at(hi, dv_a, dv_b)? {
            return Err(NbtiError::SolverDiverged {
                context: "cell cannot hold data even at full rail",
            });
        }
        if self.holds_at(lo, dv_a, dv_b)? {
            return Ok(lo);
        }
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if self.holds_at(mid, dv_a, dv_b)? {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo < 1e-4 {
                break;
            }
        }
        Ok(hi)
    }

    /// Drowsy-voltage safety margin at a given aging state: the distance
    /// between the design's `Vdd,low` and the aged DRV (negative =
    /// unsafe).
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn drowsy_margin(&self, dv_a: f64, dv_b: f64) -> Result<f64, NbtiError> {
        Ok(self.design.vdd_low() - self.min_retention_voltage(dv_a, dv_b)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drv() -> DrvAnalysis {
        DrvAnalysis::new(CellDesign::default_45nm())
    }

    #[test]
    fn hold_snm_grows_with_voltage() {
        let d = drv();
        let lo = d.hold_snm(0.4, 0.0, 0.0).unwrap();
        let hi = d.hold_snm(1.1, 0.0, 0.0).unwrap();
        assert!(hi > lo, "hold margin must grow with the rail: {lo} vs {hi}");
    }

    #[test]
    fn aging_raises_the_drv() {
        let d = drv();
        let fresh = d.min_retention_voltage(0.0, 0.0).unwrap();
        let aged = d.min_retention_voltage(0.08, 0.02).unwrap();
        assert!(
            aged >= fresh,
            "an aged cell needs at least as much retention voltage: {fresh} vs {aged}"
        );
    }

    #[test]
    fn paper_drowsy_voltage_is_safe_at_end_of_life() {
        // At the 20 % read-SNM failure point the drowsy rail must still
        // hold data — otherwise the paper's scheme would lose state
        // before it loses read margin.
        let d = drv();
        // ~ the critical shift at failure for the default design.
        let margin = d.drowsy_margin(0.08, 0.08).unwrap();
        assert!(
            margin > 0.0,
            "0.75 V drowsy rail must stay above the aged DRV (margin {margin})"
        );
    }

    #[test]
    fn destroyed_cell_reports_divergence() {
        let d = drv().with_margin(0.5); // absurd margin requirement
        assert!(d.min_retention_voltage(0.0, 0.0).is_err());
    }

    #[test]
    fn margin_knob_is_monotone() {
        let strict = DrvAnalysis::new(CellDesign::default_45nm())
            .with_margin(0.08)
            .min_retention_voltage(0.0, 0.0)
            .unwrap();
        let lax = DrvAnalysis::new(CellDesign::default_45nm())
            .with_margin(0.02)
            .min_retention_voltage(0.0, 0.0)
            .unwrap();
        assert!(strict > lax, "stricter margin needs more voltage");
    }

    #[test]
    fn hold_beats_read_snm_at_same_rail() {
        let design = CellDesign::default_45nm();
        let d = DrvAnalysis::new(design.clone());
        let hold = d.hold_snm(design.vdd(), 0.0, 0.0).unwrap();
        let read = SnmSolver::new()
            .extract(
                &ReadInverter::from_design(&design, 0.0),
                &ReadInverter::from_design(&design, 0.0),
            )
            .unwrap()
            .snm;
        assert!(
            hold > read,
            "hold SNM ({hold}) must exceed read SNM ({read})"
        );
    }
}
