//! Stress bookkeeping for the two pMOS devices of a 6T cell.
//!
//! A 6T cell stresses exactly one of its two pull-up pMOS devices at any
//! time: the one whose gate sees the '0'-holding storage node. With `p0`
//! the probability of storing a logic '0', the two devices carry stress
//! duty cycles `1 − p0` and `p0` of the cell's *active* time (paper §II-A,
//! ref. \[11\]: balanced content, `p0 = 0.5`, is the best case because the
//! worst device then carries the least duty).
//!
//! Low-power states modulate the stress further:
//!
//! * **Voltage scaling** (the paper's choice, §III-A1): contents are
//!   retained, both devices keep their roles, but the reduced rail voltage
//!   decelerates trap generation by the R–D voltage-acceleration ratio.
//! * **Power gating** (the alternative evaluated as an ablation): internal
//!   nodes float to '1', removing stress from *both* devices entirely
//!   (and actually boosting recovery, ref. \[3\]; modelled as an optional
//!   recovery credit).

use crate::error::NbtiError;
use crate::rd::RdModel;

/// The low-power mechanism applied during a cell's idle (sleep) time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SleepMode {
    /// Drowsy / DVS sleep: the rail drops to the design's `Vdd,low`.
    /// State-preserving; aging continues at the reduced-voltage rate.
    VoltageScaled,
    /// Footer-transistor power gating: internal nodes pull to '1',
    /// nullifying NBTI stress. State-destroying. `recovery_credit` ∈ [0, 1]
    /// additionally *removes* previously accumulated effective stress at
    /// that fraction of the sleep time (0 = plain stress pause).
    PowerGated {
        /// Fraction of sleep time credited as active recovery.
        recovery_credit: f64,
    },
}

impl SleepMode {
    /// Plain power gating without a recovery credit.
    pub const fn power_gated() -> Self {
        SleepMode::PowerGated {
            recovery_credit: 0.0,
        }
    }
}

/// Long-run stress statistics of one SRAM cell (or of a homogeneous
/// population such as a cache bank).
///
/// # Examples
///
/// ```
/// use nbti_model::{SleepMode, StressProfile};
///
/// // A bank asleep 60 % of the time in the drowsy state, balanced data.
/// let p = StressProfile::new(0.5, 0.6, SleepMode::VoltageScaled)?;
/// assert_eq!(p.sleep_fraction(), 0.6);
/// # Ok::<(), nbti_model::NbtiError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StressProfile {
    p0: f64,
    sleep_fraction: f64,
    mode: SleepMode,
}

impl StressProfile {
    /// Creates a profile.
    ///
    /// * `p0` — probability that the cell stores a logic '0'.
    /// * `sleep_fraction` — fraction of wall-clock time spent in the
    ///   low-power state.
    /// * `mode` — which low-power mechanism the sleep time uses.
    ///
    /// # Errors
    ///
    /// Returns [`NbtiError::InvalidProbability`] if `p0`, `sleep_fraction`
    /// or a power-gating recovery credit is outside `[0, 1]`.
    pub fn new(p0: f64, sleep_fraction: f64, mode: SleepMode) -> Result<Self, NbtiError> {
        if !(0.0..=1.0).contains(&p0) || !p0.is_finite() {
            return Err(NbtiError::InvalidProbability {
                name: "p0",
                value: p0,
            });
        }
        if !(0.0..=1.0).contains(&sleep_fraction) || !sleep_fraction.is_finite() {
            return Err(NbtiError::InvalidProbability {
                name: "sleep_fraction",
                value: sleep_fraction,
            });
        }
        if let SleepMode::PowerGated { recovery_credit } = mode {
            if !(0.0..=1.0).contains(&recovery_credit) || !recovery_credit.is_finite() {
                return Err(NbtiError::InvalidProbability {
                    name: "recovery_credit",
                    value: recovery_credit,
                });
            }
        }
        Ok(Self {
            p0,
            sleep_fraction,
            mode,
        })
    }

    /// An always-active cell (no power management) storing '0' with
    /// probability `p0`; the paper's monolithic-cache reference point.
    ///
    /// # Panics
    ///
    /// Panics if `p0` is outside `[0, 1]` (use [`StressProfile::new`] for
    /// fallible construction).
    pub fn always_on(p0: f64) -> Self {
        Self::new(p0, 0.0, SleepMode::VoltageScaled).expect("always_on requires p0 in [0, 1]")
    }

    /// Probability of storing a logic '0'.
    pub fn p0(&self) -> f64 {
        self.p0
    }

    /// Fraction of time in the low-power state.
    pub fn sleep_fraction(&self) -> f64 {
        self.sleep_fraction
    }

    /// The low-power mechanism in use.
    pub fn mode(&self) -> SleepMode {
        self.mode
    }

    /// The *stress-rate modulation factor* `m`: effective stress years
    /// accumulate per wall-clock year at rate `duty · m`.
    ///
    /// * Voltage scaling: `m = (1 − S) + S · a_V(Vdd,low)`.
    /// * Power gating: `m = max((1 − S) − S · χ, 0)` where `χ` is the
    ///   recovery credit.
    pub fn rate_modulation(&self, rd: &RdModel, vdd_low: f64) -> f64 {
        let s = self.sleep_fraction;
        match self.mode {
            SleepMode::VoltageScaled => (1.0 - s) + s * rd.voltage_acceleration(vdd_low),
            SleepMode::PowerGated { recovery_credit } => ((1.0 - s) - s * recovery_credit).max(0.0),
        }
    }

    /// Per-device effective stress rates `(rate_a, rate_b)` in effective
    /// years per wall-clock year.
    ///
    /// Device A is the pull-up stressed while the cell stores '1'
    /// (duty `1 − p0`), device B the one stressed while storing '0'
    /// (duty `p0`).
    pub fn stress_rates(&self, rd: &RdModel, vdd_low: f64) -> (f64, f64) {
        let m = self.rate_modulation(rd, vdd_low);
        ((1.0 - self.p0) * m, self.p0 * m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rd() -> RdModel {
        RdModel::default_45nm()
    }

    #[test]
    fn validation_rejects_out_of_range() {
        assert!(StressProfile::new(-0.1, 0.0, SleepMode::VoltageScaled).is_err());
        assert!(StressProfile::new(1.1, 0.0, SleepMode::VoltageScaled).is_err());
        assert!(StressProfile::new(0.5, -0.1, SleepMode::VoltageScaled).is_err());
        assert!(StressProfile::new(0.5, 1.5, SleepMode::VoltageScaled).is_err());
        assert!(StressProfile::new(
            0.5,
            0.5,
            SleepMode::PowerGated {
                recovery_credit: 2.0
            }
        )
        .is_err());
        assert!(StressProfile::new(f64::NAN, 0.0, SleepMode::VoltageScaled).is_err());
    }

    #[test]
    fn always_on_has_unit_modulation() {
        let p = StressProfile::always_on(0.5);
        assert!((p.rate_modulation(&rd(), 0.75) - 1.0).abs() < 1e-12);
        let (a, b) = p.stress_rates(&rd(), 0.75);
        assert!((a - 0.5).abs() < 1e-12);
        assert!((b - 0.5).abs() < 1e-12);
    }

    #[test]
    fn voltage_scaled_sleep_decelerates_but_does_not_stop_aging() {
        let p = StressProfile::new(0.5, 1.0, SleepMode::VoltageScaled).unwrap();
        let m = p.rate_modulation(&rd(), 0.75);
        assert!(m > 0.0 && m < 1.0, "m = {m}");
    }

    #[test]
    fn power_gated_sleep_stops_aging() {
        let p = StressProfile::new(0.5, 1.0, SleepMode::power_gated()).unwrap();
        assert_eq!(p.rate_modulation(&rd(), 0.75), 0.0);
    }

    #[test]
    fn recovery_credit_clamps_at_zero() {
        let p = StressProfile::new(
            0.5,
            0.9,
            SleepMode::PowerGated {
                recovery_credit: 1.0,
            },
        )
        .unwrap();
        assert_eq!(p.rate_modulation(&rd(), 0.75), 0.0);
    }

    #[test]
    fn more_sleep_means_lower_rates() {
        let low = StressProfile::new(0.5, 0.2, SleepMode::VoltageScaled).unwrap();
        let high = StressProfile::new(0.5, 0.8, SleepMode::VoltageScaled).unwrap();
        assert!(
            high.rate_modulation(&rd(), 0.75) < low.rate_modulation(&rd(), 0.75),
            "sleeping more must slow aging"
        );
    }

    #[test]
    fn duty_split_follows_p0() {
        let p = StressProfile::always_on(0.8);
        let (a, b) = p.stress_rates(&rd(), 0.75);
        assert!((a - 0.2).abs() < 1e-12, "device A duty = 1 - p0");
        assert!((b - 0.8).abs() < 1e-12, "device B duty = p0");
    }

    #[test]
    fn gated_mode_ignores_rail_voltage() {
        let p = StressProfile::new(0.5, 0.5, SleepMode::power_gated()).unwrap();
        assert_eq!(p.rate_modulation(&rd(), 0.3), p.rate_modulation(&rd(), 1.0));
    }
}
