//! Property-based tests for the NBTI physics stack (quickprop-driven).

use nbti_model::{
    AgingLut, CellDesign, LifetimeSolver, Mosfet, MosfetKind, ReadInverter, SleepMode, SnmSolver,
    StressProfile, VtcSolver,
};
use std::sync::OnceLock;

fn solver() -> &'static LifetimeSolver {
    static S: OnceLock<LifetimeSolver> = OnceLock::new();
    S.get_or_init(|| {
        LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("calibration")
    })
}

/// Fewer cases in debug builds keeps `cargo test --workspace` snappy; the
/// release/CI run covers the full budget.
const CASES: u32 = if cfg!(debug_assertions) { 6 } else { 32 };

/// Drain current is monotone non-decreasing in both terminal voltages.
#[test]
fn device_current_monotone() {
    quickprop::cases(CASES, |g| {
        let vgs = g.f64_in(0.0..1.2);
        let vds = g.f64_in(0.0..1.2);
        let dvg = g.f64_in(0.0..0.3);
        let dvd = g.f64_in(0.0..0.3);
        let d = Mosfet::new(MosfetKind::Nmos, 0.32, 3.2e-4, 1.3).unwrap();
        let base = d.drain_current(vgs, vds);
        assert!(d.drain_current(vgs + dvg, vds) + 1e-18 >= base);
        assert!(d.drain_current(vgs, vds + dvd) + 1e-18 >= base);
        assert!(base >= 0.0);
    });
}

/// The inverter VTC is monotone non-increasing for any physically
/// shaped device triple.
#[test]
fn vtc_monotone_for_random_strengths() {
    quickprop::cases(CASES, |g| {
        let k_pu = g.f64_in(0.5e-4..3e-4);
        let k_pd = g.f64_in(1.5e-4..5e-4);
        let k_ax = g.f64_in(0.5e-4..2.5e-4);
        let pu = Mosfet::new(MosfetKind::Pmos, 0.35, k_pu, 1.35).unwrap();
        let pd = Mosfet::new(MosfetKind::Nmos, 0.32, k_pd, 1.30).unwrap();
        let ax = Mosfet::new(MosfetKind::Nmos, 0.32, k_ax, 1.30).unwrap();
        let inv = ReadInverter::new(pu, pd, Some(ax), 1.1).unwrap();
        let vtc = VtcSolver::sample(&inv, 65).unwrap();
        for w in vtc.samples().windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-6, "VTC rose: {w:?}");
        }
    });
}

/// Read SNM never increases when either device ages further
/// (within the physical pre-failure regime).
#[test]
fn snm_monotone_in_aging() {
    quickprop::cases(CASES, |g| {
        let dv1 = g.f64_in(0.0..0.25);
        let dv2 = g.f64_in(0.0..0.25);
        let extra = g.f64_in(0.005..0.08);
        let design = CellDesign::default_45nm();
        let snm = SnmSolver::new();
        let base = snm
            .extract(
                &ReadInverter::from_design(&design, dv1),
                &ReadInverter::from_design(&design, dv2),
            )
            .unwrap();
        let aged = snm
            .extract(
                &ReadInverter::from_design(&design, dv1 + extra),
                &ReadInverter::from_design(&design, dv2),
            )
            .unwrap();
        assert!(
            aged.snm <= base.snm + 2e-3,
            "SNM grew with aging: {} -> {} at ({dv1}, {dv2}, +{extra})",
            base.snm,
            aged.snm
        );
    });
}

/// Lifetime is monotone non-decreasing in the sleep fraction and
/// maximal at balanced p0, for both sleep modes.
#[test]
fn lifetime_structure() {
    quickprop::cases(CASES, |g| {
        let p0 = g.f64_in(0.0..1.0);
        let s = g.f64_in(0.0..0.95);
        let ds = g.f64_in(0.01..0.05);
        let solver = solver();
        for mode in [SleepMode::VoltageScaled, SleepMode::power_gated()] {
            let lt_lo = solver
                .lifetime_years(&StressProfile::new(p0, s, mode).unwrap())
                .unwrap();
            let lt_hi = solver
                .lifetime_years(&StressProfile::new(p0, s + ds, mode).unwrap())
                .unwrap();
            assert!(
                lt_hi >= lt_lo * 0.999,
                "more sleep shortened life: {lt_lo} -> {lt_hi}"
            );
            // Balanced content is never worse than this p0.
            let lt_bal = solver
                .lifetime_years(&StressProfile::new(0.5, s, mode).unwrap())
                .unwrap();
            assert!(lt_bal >= lt_lo * 0.999);
        }
    });
}

/// p0 symmetry: storing mostly zeros ages like storing mostly ones.
#[test]
fn lifetime_p0_symmetry() {
    quickprop::cases(CASES, |g| {
        let p0 = g.f64_in(0.0..1.0);
        let s = g.f64_in(0.0..0.9);
        let solver = solver();
        let a = solver
            .lifetime_years(&StressProfile::new(p0, s, SleepMode::VoltageScaled).unwrap())
            .unwrap();
        let b = solver
            .lifetime_years(&StressProfile::new(1.0 - p0, s, SleepMode::VoltageScaled).unwrap())
            .unwrap();
        assert!((a - b).abs() / a < 0.02, "p0 symmetry broken: {a} vs {b}");
    });
}

/// The LUT interpolates the direct solve within 5 % anywhere strictly
/// inside the grid.
#[test]
fn lut_tracks_direct_solve() {
    quickprop::cases(CASES, |g| {
        let p0 = g.f64_in(0.05..0.95);
        let s = g.f64_in(0.05..0.95);
        static LUT: OnceLock<AgingLut> = OnceLock::new();
        let lut = LUT.get_or_init(|| {
            AgingLut::build(solver(), SleepMode::VoltageScaled, 13, 13, 500.0).unwrap()
        });
        let direct = solver()
            .lifetime_years(&StressProfile::new(p0, s, SleepMode::VoltageScaled).unwrap())
            .unwrap();
        let interp = lut.lifetime_years(p0, s).unwrap();
        assert!(
            (direct - interp).abs() / direct < 0.05,
            "LUT off at ({p0}, {s}): {interp} vs {direct}"
        );
    });
}

/// Gating is always at least as good as voltage scaling, which is
/// always at least as good as no sleep at all.
#[test]
fn sleep_mode_ordering() {
    quickprop::cases(CASES, |g| {
        let p0 = g.f64_in(0.1..0.9);
        let s = g.f64_in(0.05..0.95);
        let solver = solver();
        let none = solver
            .lifetime_years(&StressProfile::always_on(p0))
            .unwrap();
        let vs = solver
            .lifetime_years(&StressProfile::new(p0, s, SleepMode::VoltageScaled).unwrap())
            .unwrap();
        let pg = solver
            .lifetime_years(&StressProfile::new(p0, s, SleepMode::power_gated()).unwrap())
            .unwrap();
        assert!(vs >= none * 0.999);
        assert!(pg >= vs * 0.999);
    });
}
