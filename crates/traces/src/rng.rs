//! Deterministic pseudo-random number generation.
//!
//! Trace generation must be exactly reproducible across runs and platforms
//! (the experiment tables in `EXPERIMENTS.md` are regenerated bit-for-bit),
//! so we implement a small, well-known generator instead of depending on a
//! crate whose stream might change between versions.

/// SplitMix64: a tiny, fast, high-quality 64-bit generator.
///
/// Passes BigCrush when used as a stream; here it both drives trace
/// decisions directly and seeds derived streams. Reference: Steele, Lea &
/// Flood, "Fast Splittable Pseudorandom Number Generators", OOPSLA 2014.
///
/// # Examples
///
/// ```
/// use trace_synth::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// let r = a.next_f64();
/// assert!((0.0..1.0).contains(&r));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is fine.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Derives an independent stream for a named sub-purpose; mixing the
    /// label keeps streams decorrelated even for adjacent seeds.
    pub fn derive(&self, label: u64) -> Self {
        let mut child = Self::new(self.state ^ label.wrapping_mul(0x9e3779b97f4a7c15));
        child.next_u64();
        Self::new(child.next_u64())
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            // Multiply-shift bounded sampling (Lemire); bias is < 2^-64
            // per draw, irrelevant for trace synthesis.
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks an index from a slice of non-negative weights. Returns the
    /// last index if the weights sum to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        debug_assert!(!weights.is_empty());
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return weights.len() - 1;
        }
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_first_value() {
        // First output for seed 0 of the canonical SplitMix64.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xe220a8397b1dcdaf);
    }

    #[test]
    fn bounded_sampling_stays_in_bounds_and_covers() {
        let mut r = SplitMix64::new(3);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            let v = r.next_below(8) as usize;
            assert!(v < 8);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut r = SplitMix64::new(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut r = SplitMix64::new(5);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[r.pick_weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((2.5..3.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn degenerate_weights_fall_back_to_last() {
        let mut r = SplitMix64::new(9);
        assert_eq!(r.pick_weighted(&[0.0, 0.0]), 1);
    }

    #[test]
    fn derived_streams_differ() {
        let base = SplitMix64::new(1234);
        let mut a = base.derive(1);
        let mut b = base.derive(2);
        assert_ne!(a.next_u64(), b.next_u64());
        // Deriving twice with the same label gives the same stream.
        let mut c = base.derive(1);
        let mut d = base.derive(1);
        assert_eq!(c.next_u64(), d.next_u64());
    }
}
