//! Trace file formats: Dinero `.din`, Valgrind Lackey, and CSV.
//!
//! All three readers stream line-by-line over any [`BufRead`], so a
//! multi-gigabyte trace runs in constant memory, and all errors carry
//! the 1-based line number of the offending input. Matching writers
//! exist for every format, and the property tests in
//! `tests/format_props.rs` hold them to an exact round-trip: emit →
//! parse → identical access stream.
//!
//! The cache under study is a data cache, so instruction fetches
//! (Dinero label `2`, Lackey `I` lines) are skipped, and Lackey's
//! modify (`M`) records expand to a read followed by a write.
//!
//! | format | line shape | read | write |
//! |---|---|---|---|
//! | `din` | `<label> <hex-addr>` | label `0` | label `1` |
//! | `lackey` | ` L addr,size` / ` S addr,size` / ` M addr,size` | `L` | `S` (`M` = both) |
//! | `csv` | `addr,kind` (`0x…` or decimal; `r`/`w`) | `r` | `w` |
//!
//! # Examples
//!
//! ```
//! use trace_synth::formats::{CsvReader, write_csv};
//! use trace_synth::source::TraceSource;
//! use cache_sim::Access;
//!
//! let trace = vec![Access::read(0x1000), Access::write(0x2010)];
//! let mut text = String::new();
//! write_csv(&mut text, &trace);
//! let mut reader = CsvReader::new(text.as_bytes());
//! let mut back = Vec::new();
//! reader.next_batch(&mut back, usize::MAX).unwrap();
//! assert_eq!(back, trace);
//! ```

use crate::source::{TraceError, TraceSource};
use cache_sim::{Access, AccessKind};
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// The supported trace file formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceFormat {
    /// Dinero IV `.din`: `<label> <hex addr>` per reference.
    Din,
    /// Valgrind Lackey (`--trace-mem=yes`) output.
    Lackey,
    /// Simple CSV: `addr,kind` per line.
    Csv,
}

impl TraceFormat {
    /// All formats, in spec-key order.
    pub const ALL: [TraceFormat; 3] = [TraceFormat::Din, TraceFormat::Lackey, TraceFormat::Csv];

    /// The stable key used in trace specs (`csv:path`) and study
    /// reports.
    pub fn key(self) -> &'static str {
        match self {
            TraceFormat::Din => "din",
            TraceFormat::Lackey => "lackey",
            TraceFormat::Csv => "csv",
        }
    }

    /// Parses a format key (`"din"`, `"lackey"`, `"csv"`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownFormat`] for anything else.
    pub fn from_key(key: &str) -> Result<Self, TraceError> {
        match key {
            "din" => Ok(TraceFormat::Din),
            "lackey" => Ok(TraceFormat::Lackey),
            "csv" => Ok(TraceFormat::Csv),
            other => Err(TraceError::UnknownFormat { spec: other.into() }),
        }
    }

    /// Infers the format from a file extension (`.din`, `.lackey`,
    /// `.csv`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::UnknownFormat`] when the extension names
    /// no known format.
    pub fn from_path(path: &Path) -> Result<Self, TraceError> {
        match path.extension().and_then(|e| e.to_str()) {
            Some("din") => Ok(TraceFormat::Din),
            Some("lackey") | Some("lk") => Ok(TraceFormat::Lackey),
            Some("csv") => Ok(TraceFormat::Csv),
            _ => Err(TraceError::UnknownFormat {
                spec: path.display().to_string(),
            }),
        }
    }

    /// Opens `reader` as a streaming [`TraceSource`] in this format.
    pub fn reader<R: BufRead + 'static>(self, reader: R) -> Box<dyn TraceSource> {
        match self {
            TraceFormat::Din => Box::new(DinReader::new(reader)),
            TraceFormat::Lackey => Box::new(LackeyReader::new(reader)),
            TraceFormat::Csv => Box::new(CsvReader::new(reader)),
        }
    }
}

impl std::fmt::Display for TraceFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.key())
    }
}

/// Splits a trace spec `format:path` (e.g. `csv:/tmp/t.csv`); the bare
/// `file:` prefix infers the format from the extension.
///
/// # Errors
///
/// Returns [`TraceError::UnknownFormat`] for a missing or unknown
/// prefix.
///
/// # Examples
///
/// ```
/// use trace_synth::formats::{parse_spec, TraceFormat};
///
/// let (fmt, path) = parse_spec("din:/traces/gcc.din").unwrap();
/// assert_eq!(fmt, TraceFormat::Din);
/// assert_eq!(path, "/traces/gcc.din");
/// let (fmt, _) = parse_spec("file:/traces/gcc.din").unwrap();
/// assert_eq!(fmt, TraceFormat::Din);
/// assert!(parse_spec("/traces/gcc.din").is_err());
/// ```
pub fn parse_spec(spec: &str) -> Result<(TraceFormat, &str), TraceError> {
    let Some((key, path)) = spec.split_once(':') else {
        return Err(TraceError::UnknownFormat { spec: spec.into() });
    };
    if key == "file" {
        return Ok((TraceFormat::from_path(Path::new(path))?, path));
    }
    Ok((TraceFormat::from_key(key)?, path))
}

/// Opens a trace file as a streaming source in the given format.
///
/// # Errors
///
/// Returns [`TraceError::Io`] when the file cannot be opened.
pub fn open_path(format: TraceFormat, path: &Path) -> Result<Box<dyn TraceSource>, TraceError> {
    let file =
        File::open(path).map_err(|e| TraceError::io(&format!("open {}", path.display()), e))?;
    Ok(format.reader(BufReader::new(file)))
}

/// Line-by-line parsing scaffolding shared by the three readers: pulls
/// lines, tracks the 1-based line number, and lets each format's
/// `parse_line` push 0..=2 accesses per line.
struct LineReader<R> {
    input: R,
    line: String,
    line_no: u64,
    done: bool,
    /// Second access of a two-access line (Lackey `M`) that did not fit
    /// in the previous batch; emitted first by the next one.
    pending: Option<Access>,
}

impl<R: BufRead> LineReader<R> {
    fn new(input: R) -> Self {
        Self {
            input,
            line: String::new(),
            line_no: 0,
            done: false,
            pending: None,
        }
    }

    /// Reads the next raw line; `Ok(false)` at end of input.
    fn advance(&mut self) -> Result<bool, TraceError> {
        if self.done {
            return Ok(false);
        }
        self.line.clear();
        let n = self
            .input
            .read_line(&mut self.line)
            .map_err(|e| TraceError::io(&format!("read line {}", self.line_no + 1), e))?;
        if n == 0 {
            self.done = true;
            return Ok(false);
        }
        self.line_no += 1;
        Ok(true)
    }

    fn parse_err(&self, message: String) -> TraceError {
        TraceError::Parse {
            line: self.line_no,
            message,
        }
    }
}

/// Drives `parse_line` over lines until exactly `max` accesses are
/// appended or input ends. A single line may yield two accesses
/// (Lackey `M`); when only one fits, the second is held back and
/// emitted first by the next batch, so `max` is a strict bound — the
/// batched simulation loop relies on it to clip batches at
/// update-schedule boundaries.
fn fill<R: BufRead>(
    lr: &mut LineReader<R>,
    buf: &mut Vec<Access>,
    max: usize,
    parse_line: impl Fn(&str, &LineReader<R>) -> Result<LineAction, TraceError>,
) -> Result<usize, TraceError> {
    let before = buf.len();
    if max > 0 {
        if let Some(held) = lr.pending.take() {
            buf.push(held);
        }
    }
    while buf.len() - before < max {
        if !lr.advance()? {
            break;
        }
        match parse_line(lr.line.trim_end_matches(['\n', '\r']), lr)? {
            LineAction::Skip => {}
            LineAction::One(a) => buf.push(a),
            LineAction::Two(a, b) => {
                buf.push(a);
                if buf.len() - before < max {
                    buf.push(b);
                } else {
                    lr.pending = Some(b);
                }
            }
        }
    }
    Ok(buf.len() - before)
}

enum LineAction {
    Skip,
    One(Access),
    Two(Access, Access),
}

fn parse_addr(token: &str, radix_hint_hex: bool, line_no: u64) -> Result<u64, TraceError> {
    let (text, radix) = match token
        .strip_prefix("0x")
        .or_else(|| token.strip_prefix("0X"))
    {
        Some(rest) => (rest, 16),
        None if radix_hint_hex => (token, 16),
        None => (token, 10),
    };
    u64::from_str_radix(text, radix).map_err(|_| TraceError::Parse {
        line: line_no,
        message: format!("invalid address `{token}`"),
    })
}

// ---------------------------------------------------------------------
// Dinero .din
// ---------------------------------------------------------------------

/// Streaming reader for the Dinero IV `.din` format: one
/// `<label> <hex addr>` pair per line, label `0` = data read, `1` =
/// data write, `2` = instruction fetch (skipped — this is a data-cache
/// study). Trailing fields after the address are ignored, as Dinero
/// does.
pub struct DinReader<R> {
    lr: LineReader<R>,
}

impl<R: BufRead> DinReader<R> {
    /// Wraps a buffered reader.
    pub fn new(input: R) -> Self {
        Self {
            lr: LineReader::new(input),
        }
    }
}

impl<R: BufRead> TraceSource for DinReader<R> {
    fn next_batch(&mut self, buf: &mut Vec<Access>, max: usize) -> Result<usize, TraceError> {
        fill(&mut self.lr, buf, max, |line, lr| {
            let mut tokens = line.split_whitespace();
            let Some(label) = tokens.next() else {
                return Ok(LineAction::Skip); // blank line
            };
            let Some(addr_tok) = tokens.next() else {
                return Err(lr.parse_err(format!("missing address after label `{label}`")));
            };
            let addr = parse_addr(addr_tok, true, lr.line_no)?;
            match label {
                "0" => Ok(LineAction::One(Access::read(addr))),
                "1" => Ok(LineAction::One(Access::write(addr))),
                "2" => Ok(LineAction::Skip), // instruction fetch
                other => {
                    Err(lr.parse_err(format!("unknown din label `{other}` (expected 0, 1 or 2)")))
                }
            }
        })
    }
}

/// Writes accesses in Dinero `.din` format (`0 addr` / `1 addr`, hex).
pub fn write_din(out: &mut String, accesses: &[Access]) {
    for a in accesses {
        let label = match a.kind {
            AccessKind::Read => '0',
            AccessKind::Write => '1',
        };
        writeln!(out, "{label} {addr:x}", addr = a.addr).expect("String write");
    }
}

// ---------------------------------------------------------------------
// Valgrind Lackey
// ---------------------------------------------------------------------

/// Streaming reader for `valgrind --tool=lackey --trace-mem=yes`
/// output: ` L addr,size` (load), ` S addr,size` (store),
/// ` M addr,size` (modify — expanded to a read then a write). `I`
/// instruction lines and `==`/`--` tool chatter are skipped.
pub struct LackeyReader<R> {
    lr: LineReader<R>,
}

impl<R: BufRead> LackeyReader<R> {
    /// Wraps a buffered reader.
    pub fn new(input: R) -> Self {
        Self {
            lr: LineReader::new(input),
        }
    }
}

impl<R: BufRead> TraceSource for LackeyReader<R> {
    fn next_batch(&mut self, buf: &mut Vec<Access>, max: usize) -> Result<usize, TraceError> {
        fill(&mut self.lr, buf, max, |line, lr| {
            let trimmed = line.trim_start();
            if trimmed.is_empty() || trimmed.starts_with("==") || trimmed.starts_with("--") {
                return Ok(LineAction::Skip); // valgrind banner / blank
            }
            let Some((op, rest)) = trimmed.split_once(' ') else {
                return Err(lr.parse_err(format!("malformed lackey line `{line}`")));
            };
            if op == "I" {
                return Ok(LineAction::Skip); // instruction fetch
            }
            let addr_tok = rest.trim().split(',').next().unwrap_or("");
            let addr = parse_addr(addr_tok, true, lr.line_no)?;
            match op {
                "L" => Ok(LineAction::One(Access::read(addr))),
                "S" => Ok(LineAction::One(Access::write(addr))),
                "M" => Ok(LineAction::Two(Access::read(addr), Access::write(addr))),
                other => Err(lr.parse_err(format!(
                    "unknown lackey op `{other}` (expected I, L, S or M)"
                ))),
            }
        })
    }
}

/// Writes accesses in Lackey format (` L addr,4` / ` S addr,4`).
pub fn write_lackey(out: &mut String, accesses: &[Access]) {
    for a in accesses {
        let op = match a.kind {
            AccessKind::Read => 'L',
            AccessKind::Write => 'S',
        };
        writeln!(out, " {op} {addr:x},4", addr = a.addr).expect("String write");
    }
}

// ---------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------

/// Streaming reader for the simple CSV format: `addr,kind` per line,
/// where `addr` is `0x`-prefixed hex or decimal and `kind` is `r`/`w`
/// (case-insensitive, `read`/`write` accepted). Blank lines, `#`
/// comments and an optional `addr,kind` header are skipped.
pub struct CsvReader<R> {
    lr: LineReader<R>,
}

impl<R: BufRead> CsvReader<R> {
    /// Wraps a buffered reader.
    pub fn new(input: R) -> Self {
        Self {
            lr: LineReader::new(input),
        }
    }
}

impl<R: BufRead> TraceSource for CsvReader<R> {
    fn next_batch(&mut self, buf: &mut Vec<Access>, max: usize) -> Result<usize, TraceError> {
        fill(&mut self.lr, buf, max, |line, lr| {
            let trimmed = line.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                return Ok(LineAction::Skip);
            }
            // A header line can never be valid data, so accept it at
            // any position (tools often emit it below a comment block).
            if trimmed.eq_ignore_ascii_case("addr,kind") {
                return Ok(LineAction::Skip);
            }
            let Some((addr_tok, kind_tok)) = trimmed.split_once(',') else {
                return Err(lr.parse_err(format!("expected `addr,kind`, got `{trimmed}`")));
            };
            let addr = parse_addr(addr_tok.trim(), false, lr.line_no)?;
            let kind = kind_tok.trim();
            if kind.eq_ignore_ascii_case("r") || kind.eq_ignore_ascii_case("read") {
                Ok(LineAction::One(Access::read(addr)))
            } else if kind.eq_ignore_ascii_case("w") || kind.eq_ignore_ascii_case("write") {
                Ok(LineAction::One(Access::write(addr)))
            } else {
                Err(lr.parse_err(format!("unknown access kind `{kind}` (expected r or w)")))
            }
        })
    }
}

/// Writes accesses in CSV format (`0xADDR,r` / `0xADDR,w`).
pub fn write_csv(out: &mut String, accesses: &[Access]) {
    for a in accesses {
        let kind = match a.kind {
            AccessKind::Read => 'r',
            AccessKind::Write => 'w',
        };
        writeln!(out, "0x{addr:x},{kind}", addr = a.addr).expect("String write");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(mut src: Box<dyn TraceSource>) -> Result<Vec<Access>, TraceError> {
        let mut buf = Vec::new();
        loop {
            if src.next_batch(&mut buf, 1024)? == 0 {
                return Ok(buf);
            }
        }
    }

    #[test]
    fn din_reads_labels_and_skips_ifetch() {
        let text = "0 1000\n2 cafe\n1 0x2010\n\n0 20\n";
        let got = read_all(TraceFormat::Din.reader(text.as_bytes())).unwrap();
        assert_eq!(
            got,
            vec![
                Access::read(0x1000),
                Access::write(0x2010),
                Access::read(0x20)
            ]
        );
    }

    #[test]
    fn din_rejects_bad_label_with_line_number() {
        let text = "0 1000\n7 2000\n";
        let e = read_all(TraceFormat::Din.reader(text.as_bytes())).unwrap_err();
        assert_eq!(
            e,
            TraceError::Parse {
                line: 2,
                message: "unknown din label `7` (expected 0, 1 or 2)".into()
            }
        );
    }

    #[test]
    fn lackey_expands_modify_and_skips_chatter() {
        let text = "==123== Lackey, a tool\nI  04000000,2\n L 1000,8\n M 2000,4\n S 3000,4\n";
        let got = read_all(TraceFormat::Lackey.reader(text.as_bytes())).unwrap();
        assert_eq!(
            got,
            vec![
                Access::read(0x1000),
                Access::read(0x2000),
                Access::write(0x2000),
                Access::write(0x3000),
            ]
        );
    }

    #[test]
    fn lackey_modify_split_across_batches_holds_the_write() {
        let text = " M 2000,4\n L 3000,4\n";
        let mut src = TraceFormat::Lackey.reader(text.as_bytes());
        let mut buf = Vec::new();
        assert_eq!(src.next_batch(&mut buf, 1).unwrap(), 1, "strict max");
        assert_eq!(buf, vec![Access::read(0x2000)]);
        buf.clear();
        assert_eq!(src.next_batch(&mut buf, 10).unwrap(), 2);
        assert_eq!(buf, vec![Access::write(0x2000), Access::read(0x3000)]);
    }

    #[test]
    fn csv_accepts_hex_decimal_header_and_comments() {
        let text = "addr,kind\n# warm-up\n0x1000,r\n8208,W\n";
        let got = read_all(TraceFormat::Csv.reader(text.as_bytes())).unwrap();
        assert_eq!(got, vec![Access::read(0x1000), Access::write(8208)]);
    }

    #[test]
    fn csv_header_is_skipped_below_a_comment_block() {
        let text = "# generated by my tool\n\naddr,kind\n0x10,read\n0x20,WRITE\n";
        let got = read_all(TraceFormat::Csv.reader(text.as_bytes())).unwrap();
        assert_eq!(got, vec![Access::read(0x10), Access::write(0x20)]);
    }

    #[test]
    fn csv_rejects_garbage_with_line_number() {
        let text = "0x10,r\n0x20,r\nnot-a-line\n";
        let e = read_all(TraceFormat::Csv.reader(text.as_bytes())).unwrap_err();
        assert!(matches!(e, TraceError::Parse { line: 3, .. }), "{e}");
    }

    #[test]
    fn spec_parsing_covers_prefixes_and_extensions() {
        assert_eq!(parse_spec("csv:x.trace").unwrap().0, TraceFormat::Csv);
        assert_eq!(parse_spec("lackey:x").unwrap().0, TraceFormat::Lackey);
        assert_eq!(parse_spec("file:x.din").unwrap().0, TraceFormat::Din);
        assert!(parse_spec("file:x.bin").is_err());
        assert!(parse_spec("elf:x").is_err());
        assert!(parse_spec("no-colon").is_err());
    }

    #[test]
    fn open_path_reports_missing_files() {
        let Err(e) = open_path(TraceFormat::Csv, Path::new("/nonexistent/t.csv")) else {
            panic!("opening a missing file must fail");
        };
        assert!(matches!(e, TraceError::Io { .. }), "{e}");
        assert!(e.to_string().contains("/nonexistent/t.csv"), "{e}");
    }
}
