//! Synthetic MediaBench-like memory-access traces.
//!
//! The DATE 2011 paper evaluates on traces extracted from MediaBench/MiBench
//! runs, which we do not have. This crate synthesizes address streams whose
//! *bank-level idleness structure* reproduces the paper's own published
//! characterization of those workloads (Table I): program phases activate a
//! subset of small working-set regions; the regions are placed in the
//! address space so that, on the reference configuration (16 kB cache,
//! 16 B lines, M = 4 banks), each bank's **useful idleness** approximates
//! the paper's per-benchmark numbers.
//!
//! Everything downstream (energy savings, lifetimes) consumes only the
//! per-bank idle statistics and the stored-value balance, so matching
//! Table I makes Tables II–IV sensitive to the same inputs the paper's
//! were (substitution S3 in `DESIGN.md`).
//!
//! The generator is fully deterministic: the same profile and seed always
//! produce the same trace.
//!
//! Beyond the synthetic suite, the crate is the repo's **workload
//! ingestion layer**: [`source::TraceSource`] streams accesses in
//! batches from any producer, and [`formats`] parses real trace files
//! (Dinero `.din`, Valgrind Lackey, CSV) in constant memory, so the
//! whole study pipeline runs on external traces too.
//!
//! # Quick start
//!
//! ```
//! use trace_synth::suite;
//!
//! let profiles = suite::mediabench();
//! assert_eq!(profiles.len(), 18);
//! let sha = suite::by_name("sha").expect("sha is in the suite");
//! let trace: Vec<_> = sha.trace(42).take(1000).collect();
//! assert_eq!(trace.len(), 1000);
//! // Determinism: same seed, same trace.
//! let again: Vec<_> = sha.trace(42).take(1000).collect();
//! assert_eq!(trace, again);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod formats;
pub mod profile;
pub mod region;
pub mod rng;
pub mod schedule;
pub mod source;
pub mod suite;
pub mod synthetic;

pub use formats::TraceFormat;
pub use profile::{TraceGen, WorkloadProfile, WorkloadProfileBuilder};
pub use region::{AccessPattern, Region};
pub use rng::SplitMix64;
pub use schedule::{ScheduleBuilder, Slot, SlotSchedule};
pub use source::{IterSource, SliceSource, TraceError, TraceSource, BATCH_ACCESSES};

/// Reference configuration the profiles are calibrated against:
/// 16 kB cache, 16 B lines, M = 4 banks — the paper's Table I setup.
pub mod reference {
    /// Cache size in bytes.
    pub const CACHE_BYTES: u64 = 16 * 1024;
    /// Line size in bytes.
    pub const LINE_BYTES: u32 = 16;
    /// Number of banks.
    pub const BANKS: u32 = 4;
    /// Bytes of address space covered by one bank (one "quarter").
    pub const QUARTER_BYTES: u64 = CACHE_BYTES / BANKS as u64;
}
