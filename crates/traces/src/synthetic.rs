//! Bounds workloads: analytically transparent traffic used to sanity-box
//! the MediaBench models and the architecture's best/worst cases.
//!
//! * [`round_robin`] — the adversary: every bank touched every `M` cycles,
//!   so no idle interval ever beats the breakeven time and re-indexing has
//!   nothing to redistribute (both LT0 and LT collapse to the monolithic
//!   lifetime).
//! * [`single_bank`] — the dream: one bank takes all traffic, the other
//!   `M − 1` idle forever; re-indexing approaches the `M`-way sharing
//!   optimum.
//! * [`uniform_random`] — IID traffic over the whole cache: short,
//!   geometric gaps; useful idleness depends entirely on the breakeven
//!   time.

use crate::profile::WorkloadProfile;
use crate::reference::QUARTER_BYTES;
use crate::region::{AccessPattern, Region};
use crate::schedule::{ScheduleBuilder, REF_BANKS};

fn one_region_per_bank(size: u64, pattern: AccessPattern) -> [Vec<Region>; REF_BANKS] {
    [0u64, 1, 2, 3].map(|b| vec![Region::new(b * QUARTER_BYTES, size, pattern)])
}

/// Every reference bank active in every slot with equal weight: bank gaps
/// are a few cycles, never breakeven-long.
pub fn round_robin() -> WorkloadProfile {
    WorkloadProfile::builder(
        "bounds.round_robin",
        one_region_per_bank(2048, AccessPattern::Sequential { stride: 16 }),
        ScheduleBuilder::new([0.0, 0.0, 0.0, 0.0]).build(),
    )
    .build()
}

/// All traffic in bank 0; banks 1–3 never touched.
pub fn single_bank() -> WorkloadProfile {
    WorkloadProfile::builder(
        "bounds.single_bank",
        one_region_per_bank(2048, AccessPattern::Sequential { stride: 16 }),
        // Target ~100 % idleness on banks 1-3: they become epsilon-touched
        // trickles; bank 0 carries effectively all traffic.
        ScheduleBuilder::new([0.0, 0.999, 0.999, 0.999]).build(),
    )
    .build()
}

/// IID uniform traffic over all banks (random line in a random bank).
pub fn uniform_random() -> WorkloadProfile {
    WorkloadProfile::builder(
        "bounds.uniform_random",
        one_region_per_bank(QUARTER_BYTES, AccessPattern::Random),
        ScheduleBuilder::new([0.0, 0.0, 0.0, 0.0]).build(),
    )
    .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_sim::{CacheGeometry, IdentityMapping, SimConfig, Simulator};

    fn simulate(profile: &WorkloadProfile) -> cache_sim::SimOutcome {
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
        let mut sim =
            Simulator::new(SimConfig::new(geom).unwrap(), Box::new(IdentityMapping)).unwrap();
        for acc in profile.trace(3).take(120_000) {
            sim.step(acc);
        }
        let out = sim.finish();
        out.validate().unwrap();
        out
    }

    #[test]
    fn round_robin_has_no_useful_idleness() {
        let out = simulate(&round_robin());
        assert!(
            out.avg_useful_idleness() < 0.02,
            "adversarial traffic must defeat the breakeven: {}",
            out.avg_useful_idleness()
        );
        assert!(out.avg_sleep_fraction() < 0.02);
    }

    #[test]
    fn single_bank_idles_the_rest() {
        let out = simulate(&single_bank());
        assert!(out.useful_idleness(0) < 0.05, "bank 0 is the workhorse");
        for b in 1..4 {
            assert!(
                out.useful_idleness(b) > 0.9,
                "bank {b} should be ~always idle: {}",
                out.useful_idleness(b)
            );
        }
    }

    #[test]
    fn uniform_random_sits_between_the_bounds() {
        let rr = simulate(&round_robin()).avg_useful_idleness();
        let un = simulate(&uniform_random()).avg_useful_idleness();
        let sb = simulate(&single_bank()).avg_useful_idleness();
        assert!(rr <= un + 0.02 && un <= sb, "{rr} <= {un} <= {sb}");
    }

    #[test]
    fn bounds_traces_are_deterministic() {
        let a: Vec<_> = uniform_random().trace(9).take(500).collect();
        let b: Vec<_> = uniform_random().trace(9).take(500).collect();
        assert_eq!(a, b);
    }
}
