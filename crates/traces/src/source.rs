//! The open workload axis: streaming sources of [`Access`] items.
//!
//! Everything downstream of the simulator — bank idleness, sleep
//! fractions, NBTI lifetimes — is a pure function of the access stream,
//! so *any* trace is admissible, not just the synthetic MediaBench-like
//! suite. A [`TraceSource`] yields accesses in caller-sized batches,
//! which lets the simulator consume multi-gigabyte trace files in
//! constant memory and lets in-memory generators skip per-item dispatch.
//!
//! Concrete sources:
//!
//! * [`IterSource`] — adapts any `Iterator<Item = Access>` (including
//!   the synthetic [`TraceGen`](crate::TraceGen));
//! * the file readers in [`crate::formats`] — Dinero `.din`, Valgrind
//!   Lackey, and a simple CSV format.
//!
//! # Examples
//!
//! ```
//! use trace_synth::source::{IterSource, TraceSource, BATCH_ACCESSES};
//! use trace_synth::suite;
//!
//! let profile = suite::by_name("sha").unwrap();
//! let mut source = IterSource::new(profile.trace(42).take(10_000));
//! let mut buf = Vec::new();
//! let mut total = 0;
//! loop {
//!     buf.clear();
//!     let n = source.next_batch(&mut buf, BATCH_ACCESSES).unwrap();
//!     if n == 0 {
//!         break;
//!     }
//!     total += n;
//! }
//! assert_eq!(total, 10_000);
//! ```

use cache_sim::Access;
use std::error::Error;
use std::fmt;

/// Default batch size for streaming consumption: large enough to
/// amortize per-batch setup (bank LUTs, buffer refills), small enough
/// to stay resident in L1/L2 while the simulator chews on it.
pub const BATCH_ACCESSES: usize = 4096;

/// Errors produced while opening or decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// An I/O failure (open, read).
    Io {
        /// What failed, including the path when known.
        message: String,
    },
    /// A line of the trace failed to parse.
    Parse {
        /// 1-based line number of the offending line.
        line: u64,
        /// What was wrong, including the offending content.
        message: String,
    },
    /// A trace spec or file extension named no known format.
    UnknownFormat {
        /// The unrecognized spec.
        spec: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { message } => write!(f, "trace I/O error: {message}"),
            TraceError::Parse { line, message } => {
                write!(f, "trace parse error at line {line}: {message}")
            }
            TraceError::UnknownFormat { spec } => {
                write!(f, "unknown trace format `{spec}` (known: din, lackey, csv)")
            }
        }
    }
}

impl Error for TraceError {}

impl TraceError {
    /// Wraps an [`std::io::Error`] with context (usually the path).
    pub fn io(context: &str, e: std::io::Error) -> Self {
        TraceError::Io {
            message: format!("{context}: {e}"),
        }
    }
}

/// A streaming producer of memory accesses.
///
/// Implementations append up to `max` accesses per call, so consumers
/// control memory: a multi-GB file never materializes as a `Vec`.
/// Returning `0` signals exhaustion (synthetic generators are infinite
/// and never return `0`; bound them with the caller's access budget).
pub trait TraceSource {
    /// Appends up to `max` accesses to `buf`, returning how many were
    /// appended. `0` means the stream is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on I/O failures or malformed input (with
    /// the 1-based line number for file-backed sources).
    fn next_batch(&mut self, buf: &mut Vec<Access>, max: usize) -> Result<usize, TraceError>;
}

/// Adapts any access iterator into a [`TraceSource`].
///
/// The synthetic suite plugs into the streaming pipeline through this:
/// `IterSource::new(profile.trace(seed))`.
#[derive(Debug, Clone)]
pub struct IterSource<I> {
    iter: I,
}

impl<I: Iterator<Item = Access>> IterSource<I> {
    /// Wraps an iterator.
    pub fn new(iter: I) -> Self {
        Self { iter }
    }
}

impl<I: Iterator<Item = Access>> TraceSource for IterSource<I> {
    fn next_batch(&mut self, buf: &mut Vec<Access>, max: usize) -> Result<usize, TraceError> {
        let before = buf.len();
        buf.extend(self.iter.by_ref().take(max));
        Ok(buf.len() - before)
    }
}

/// A [`TraceSource`] over a borrowed slice (tests, replay buffers).
#[derive(Debug, Clone)]
pub struct SliceSource<'a> {
    rest: &'a [Access],
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice.
    pub fn new(accesses: &'a [Access]) -> Self {
        Self { rest: accesses }
    }
}

impl TraceSource for SliceSource<'_> {
    fn next_batch(&mut self, buf: &mut Vec<Access>, max: usize) -> Result<usize, TraceError> {
        let n = self.rest.len().min(max);
        let (head, tail) = self.rest.split_at(n);
        buf.extend_from_slice(head);
        self.rest = tail;
        Ok(n)
    }
}

/// Streaming FNV-1a (64-bit) hasher — the workload-provenance hash
/// recorded in study reports. Dependency-free and stable across
/// platforms and releases.
#[derive(Debug, Clone)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Starts a fresh hash.
    pub fn new() -> Self {
        Self {
            state: Self::OFFSET,
        }
    }

    /// Absorbs a chunk of bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// The hash of everything absorbed so far.
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// One-shot convenience.
    pub fn hash(bytes: &[u8]) -> u64 {
        let mut h = Self::new();
        h.update(bytes);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_source_respects_max_and_exhausts() {
        let accesses: Vec<Access> = (0..10).map(|i| Access::read(i * 16)).collect();
        let mut s = IterSource::new(accesses.clone().into_iter());
        let mut buf = Vec::new();
        assert_eq!(s.next_batch(&mut buf, 4).unwrap(), 4);
        assert_eq!(s.next_batch(&mut buf, 4).unwrap(), 4);
        assert_eq!(s.next_batch(&mut buf, 4).unwrap(), 2);
        assert_eq!(s.next_batch(&mut buf, 4).unwrap(), 0);
        assert_eq!(buf, accesses);
    }

    #[test]
    fn slice_source_round_trips() {
        let accesses: Vec<Access> = (0..7).map(Access::write).collect();
        let mut s = SliceSource::new(&accesses);
        let mut buf = Vec::new();
        while s.next_batch(&mut buf, 3).unwrap() > 0 {}
        assert_eq!(buf, accesses);
    }

    #[test]
    fn fnv64_is_stable() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(Fnv64::hash(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(Fnv64::hash(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut h = Fnv64::new();
        h.update(b"ab");
        h.update(b"c");
        assert_eq!(h.finish(), Fnv64::hash(b"abc"));
    }

    #[test]
    fn errors_render_line_numbers() {
        let e = TraceError::Parse {
            line: 17,
            message: "bad token `xyz`".into(),
        };
        let text = e.to_string();
        assert!(text.contains("line 17"), "{text}");
        assert!(text.contains("xyz"), "{text}");
    }
}
