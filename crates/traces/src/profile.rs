//! Workload profiles and the trace generator.

use crate::region::{Region, RegionCursor};
use crate::rng::SplitMix64;
use crate::schedule::{SlotSchedule, REF_BANKS};
use cache_sim::{Access, AccessKind};

/// A complete synthetic-workload description.
///
/// A profile owns per-reference-bank region sets, a cyclic slot schedule,
/// and macro-phase parameters: the program's footprint consists of
/// `segments` copies of a 16 kB segment laid out `segment_stride` apart,
/// visited in long alternating epochs (one schedule period each). At the
/// 16 kB reference configuration the segments alias onto the same banks,
/// so Table I calibration is unaffected; at 32 kB they occupy different
/// banks, producing the extra idleness the paper observes on larger
/// caches.
///
/// # Examples
///
/// ```
/// use trace_synth::suite;
///
/// let p = suite::by_name("dijkstra").unwrap();
/// assert_eq!(p.name(), "dijkstra");
/// let first_thousand: Vec<_> = p.trace(1).take(1000).collect();
/// assert_eq!(first_thousand.len(), 1000);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    name: String,
    regions: [Vec<Region>; REF_BANKS],
    schedule: SlotSchedule,
    segments: u32,
    segment_stride: u64,
    leak_through: f64,
    write_ratio: f64,
    p0: f64,
    burst_period: u64,
    burst_len: u64,
    resident_bank: usize,
}

impl WorkloadProfile {
    /// Starts a builder with sensible defaults (single segment, no
    /// lingering traffic, 25 % writes, balanced `p0`). Prefer this over
    /// [`WorkloadProfile::new`] for custom workloads.
    ///
    /// # Examples
    ///
    /// ```
    /// use trace_synth::{AccessPattern, Region, ScheduleBuilder, WorkloadProfile};
    ///
    /// let region = |b: u64| vec![Region::new(b * 4096, 1024, AccessPattern::Random)];
    /// let profile = WorkloadProfile::builder(
    ///     "mine",
    ///     [region(0), region(1), region(2), region(3)],
    ///     ScheduleBuilder::new([0.1, 0.3, 0.6, 0.9]).build(),
    /// )
    /// .write_ratio(0.4)
    /// .build();
    /// assert_eq!(profile.name(), "mine");
    /// ```
    pub fn builder(
        name: impl Into<String>,
        regions: [Vec<Region>; REF_BANKS],
        schedule: SlotSchedule,
    ) -> WorkloadProfileBuilder {
        WorkloadProfileBuilder {
            name: name.into(),
            regions,
            schedule,
            segments: 1,
            segment_stride: 16 * 1024,
            leak_through: 0.0,
            write_ratio: 0.25,
            p0: 0.5,
        }
    }

    /// Assembles a profile from all parts at once (the suite constructor;
    /// see [`WorkloadProfile::builder`] for the ergonomic path).
    ///
    /// # Panics
    ///
    /// Panics if any bank's region list is empty, `segments` is zero, or a
    /// probability parameter is outside `[0, 1]`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        regions: [Vec<Region>; REF_BANKS],
        schedule: SlotSchedule,
        segments: u32,
        segment_stride: u64,
        leak_through: f64,
        write_ratio: f64,
        p0: f64,
    ) -> Self {
        assert!(
            regions.iter().all(|r| !r.is_empty()),
            "every reference bank needs at least one region"
        );
        assert!(segments > 0, "at least one segment");
        for (name_p, v) in [
            ("leak_through", leak_through),
            ("write_ratio", write_ratio),
            ("p0", p0),
        ] {
            assert!((0.0..=1.0).contains(&v), "{name_p} must be in [0, 1]");
        }
        // The busiest reference bank plays the role of the program's
        // resident data (stack, globals): its traffic never migrates to
        // another segment, so on caches larger than one segment there is
        // always one bank with only slot-scale idleness — which is what
        // keeps the paper's LT0 (no re-indexing) low on big caches too.
        let resident_bank = (0..REF_BANKS)
            .max_by(|&a, &b| {
                let wa: f64 = schedule.slots().iter().map(|s| s.weights[a]).sum();
                let wb: f64 = schedule.slots().iter().map(|s| s.weights[b]).sum();
                wa.partial_cmp(&wb).expect("finite weights")
            })
            .expect("REF_BANKS > 0");
        Self {
            name: name.into(),
            regions,
            schedule,
            segments,
            segment_stride,
            leak_through,
            write_ratio,
            p0,
            burst_period: 768,
            burst_len: 96,
            resident_bank,
        }
    }

    /// The benchmark name (matches the paper's Table I rows).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns a copy with a different stored-zero probability (used by
    /// the cell-flipping ablation to model skewed data).
    ///
    /// # Panics
    ///
    /// Panics if `p0` is outside `[0, 1]`.
    #[must_use]
    pub fn with_p0(&self, p0: f64) -> Self {
        assert!((0.0..=1.0).contains(&p0), "p0 must be in [0, 1]");
        let mut c = self.clone();
        c.p0 = p0;
        c
    }

    /// The per-reference-bank regions.
    pub fn regions(&self) -> &[Vec<Region>; REF_BANKS] {
        &self.regions
    }

    /// The slot schedule.
    pub fn schedule(&self) -> &SlotSchedule {
        &self.schedule
    }

    /// Number of macro segments in the footprint.
    pub fn segments(&self) -> u32 {
        self.segments
    }

    /// Probability that the stored data is a logic '0' (consumed by the
    /// aging model; 0.5 for all paper benchmarks, adjustable for the
    /// cell-flipping ablation).
    pub fn p0(&self) -> f64 {
        self.p0
    }

    /// Total footprint in bytes (upper bound over all regions/segments).
    pub fn footprint_bytes(&self) -> u64 {
        let max_end = self
            .regions
            .iter()
            .flatten()
            .map(|r| r.base() + r.size())
            .max()
            .unwrap_or(0);
        max_end + (self.segments as u64 - 1) * self.segment_stride
    }

    /// Starts an infinite, deterministic trace for this profile.
    pub fn trace(&self, seed: u64) -> TraceGen {
        let cursors = self
            .regions
            .clone()
            .map(|rs| rs.iter().map(Region::cursor).collect::<Vec<RegionCursor>>());
        TraceGen {
            profile: self.clone(),
            rng: SplitMix64::new(seed).derive(0x7261_6365),
            cursors,
            cycle: 0,
            epoch_cycles: self.schedule.period_cycles(),
        }
    }
}

/// Incremental construction of a [`WorkloadProfile`].
///
/// Created by [`WorkloadProfile::builder`]; every setter has a safe
/// default, and [`build`](WorkloadProfileBuilder::build) validates the
/// combination.
#[derive(Debug, Clone)]
pub struct WorkloadProfileBuilder {
    name: String,
    regions: [Vec<Region>; REF_BANKS],
    schedule: SlotSchedule,
    segments: u32,
    segment_stride: u64,
    leak_through: f64,
    write_ratio: f64,
    p0: f64,
}

impl WorkloadProfileBuilder {
    /// Number of macro segments in the footprint (default 1).
    #[must_use]
    pub fn segments(mut self, segments: u32) -> Self {
        self.segments = segments;
        self
    }

    /// Byte distance between macro segments (default 16 kB).
    #[must_use]
    pub fn segment_stride(mut self, stride: u64) -> Self {
        self.segment_stride = stride;
        self
    }

    /// Fraction of traffic lingering on inactive segments (default 0).
    #[must_use]
    pub fn leak_through(mut self, leak: f64) -> Self {
        self.leak_through = leak;
        self
    }

    /// Write fraction of the access stream (default 0.25).
    #[must_use]
    pub fn write_ratio(mut self, ratio: f64) -> Self {
        self.write_ratio = ratio;
        self
    }

    /// Probability of storing a logic '0' (default 0.5).
    #[must_use]
    pub fn p0(mut self, p0: f64) -> Self {
        self.p0 = p0;
        self
    }

    /// Validates and produces the profile.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`WorkloadProfile::new`].
    pub fn build(self) -> WorkloadProfile {
        WorkloadProfile::new(
            self.name,
            self.regions,
            self.schedule,
            self.segments,
            self.segment_stride,
            self.leak_through,
            self.write_ratio,
            self.p0,
        )
    }
}

/// Infinite iterator of [`Access`] items for one profile.
///
/// Produced by [`WorkloadProfile::trace`]; bound it with
/// [`Iterator::take`].
#[derive(Debug, Clone)]
pub struct TraceGen {
    profile: WorkloadProfile,
    rng: SplitMix64,
    cursors: [Vec<RegionCursor>; REF_BANKS],
    cycle: u64,
    epoch_cycles: u64,
}

impl TraceGen {
    /// Cycles generated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }
}

impl Iterator for TraceGen {
    type Item = Access;

    fn next(&mut self) -> Option<Access> {
        let p = &self.profile;
        let slot = p.schedule.slot_at(self.cycle);
        let bank = self.rng.pick_weighted(&slot.weights);

        // Macro phase: which segment does this access target? Lingering
        // traffic to the inactive segment comes in *bursts* (real programs
        // touch cold data in clusters — a stack spill, a table refresh),
        // which preserves long idle gaps on the inactive segment's banks.
        let epoch = self.cycle / self.epoch_cycles;
        let active_segment = (epoch % p.segments as u64) as u32;
        let in_burst = self.cycle % p.burst_period < p.burst_len;
        let burst_prob = (p.leak_through * p.burst_period as f64 / p.burst_len as f64).min(1.0);
        let segment = if bank == p.resident_bank {
            // Resident data (stack/globals) lives in segment 0 for good.
            0
        } else if p.segments > 1 && in_burst && self.rng.next_bool(burst_prob) {
            let other = self.rng.next_below(p.segments as u64 - 1) as u32;
            (active_segment + 1 + other) % p.segments
        } else {
            active_segment
        };

        let regions = &p.regions[bank];
        let idx = if regions.len() > 1 {
            self.rng.next_below(regions.len() as u64) as usize
        } else {
            0
        };
        let base_addr = self.cursors[bank][idx].next_addr(&regions[idx], &mut self.rng);
        let addr = base_addr + segment as u64 * p.segment_stride;

        let kind = if self.rng.next_bool(p.write_ratio) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        self.cycle += 1;
        Some(Access { addr, kind })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::QUARTER_BYTES;
    use crate::region::AccessPattern;
    use crate::schedule::ScheduleBuilder;

    fn tiny_profile() -> WorkloadProfile {
        let regions = [
            vec![Region::new(
                0,
                1024,
                AccessPattern::Sequential { stride: 16 },
            )],
            vec![Region::new(QUARTER_BYTES, 1024, AccessPattern::Random)],
            vec![Region::new(2 * QUARTER_BYTES, 1024, AccessPattern::Random)],
            vec![Region::new(3 * QUARTER_BYTES, 1024, AccessPattern::Random)],
        ];
        WorkloadProfile::new(
            "tiny",
            regions,
            ScheduleBuilder::new([0.1, 0.3, 0.6, 0.9]).build(),
            2,
            16 * 1024,
            0.1,
            0.2,
            0.5,
        )
    }

    #[test]
    fn traces_are_deterministic_per_seed() {
        let p = tiny_profile();
        let a: Vec<_> = p.trace(5).take(5000).collect();
        let b: Vec<_> = p.trace(5).take(5000).collect();
        let c: Vec<_> = p.trace(6).take(5000).collect();
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn addresses_fall_in_declared_regions() {
        let p = tiny_profile();
        let footprint = p.footprint_bytes();
        for acc in p.trace(1).take(20_000) {
            assert!(
                acc.addr < footprint,
                "address {} escapes footprint",
                acc.addr
            );
        }
    }

    #[test]
    fn active_bank_distribution_follows_schedule() {
        let p = tiny_profile();
        // Bank 3 idles 90 % of slots; bank 0 only 10 %.
        let mut counts = [0u64; 4];
        for acc in p.trace(2).take(200_000) {
            let quarter = ((acc.addr % (16 * 1024)) / QUARTER_BYTES) as usize;
            counts[quarter] += 1;
        }
        assert!(
            counts[0] > counts[3] * 3,
            "bank 0 should dominate bank 3: {counts:?}"
        );
    }

    #[test]
    fn write_ratio_is_respected() {
        let p = tiny_profile();
        let n = 100_000;
        let writes = p
            .trace(3)
            .take(n)
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "write fraction {frac}");
    }

    #[test]
    fn segments_alternate_by_epoch() {
        let p = tiny_profile();
        let period = p.schedule().period_cycles();
        let trace: Vec<_> = p.trace(4).take(2 * period as usize).collect();
        let seg_of = |addr: u64| (addr / (16 * 1024)) as u32;
        // Bank 0 is the busiest and plays the resident (stack/globals)
        // role: it stays in segment 0 forever. The *migrating* traffic
        // (other banks) must favour the epoch's segment.
        let migrating = |acc: &&cache_sim::Access| (acc.addr % (16 * 1024)) >= QUARTER_BYTES;
        let first: Vec<u32> = trace[..period as usize]
            .iter()
            .filter(migrating)
            .map(|a| seg_of(a.addr))
            .collect();
        let second: Vec<u32> = trace[period as usize..]
            .iter()
            .filter(migrating)
            .map(|a| seg_of(a.addr))
            .collect();
        let frac0_first = first.iter().filter(|&&s| s == 0).count() as f64 / first.len() as f64;
        let frac1_second = second.iter().filter(|&&s| s == 1).count() as f64 / second.len() as f64;
        assert!(
            frac0_first > 0.8,
            "epoch 0 should favour segment 0: {frac0_first}"
        );
        assert!(
            frac1_second > 0.8,
            "epoch 1 should favour segment 1: {frac1_second}"
        );
    }

    #[test]
    fn resident_bank_never_migrates() {
        let p = tiny_profile(); // bank 0 is busiest -> resident
        let period = p.schedule().period_cycles();
        for acc in p.trace(9).take(2 * period as usize) {
            let quarter = (acc.addr % (16 * 1024)) / QUARTER_BYTES;
            if quarter == 0 {
                assert!(acc.addr < 16 * 1024, "resident traffic left segment 0");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one region")]
    fn empty_region_list_panics() {
        let _ = WorkloadProfile::new(
            "bad",
            [vec![], vec![], vec![], vec![]],
            ScheduleBuilder::new([0.5; 4]).build(),
            1,
            0,
            0.0,
            0.0,
            0.5,
        );
    }
}
