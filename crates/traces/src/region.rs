//! Working-set regions and their access patterns.

use crate::rng::SplitMix64;

/// How addresses are drawn within a region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Streaming: the cursor advances by `stride` bytes and wraps
    /// (CRC32, sha, say — buffer scans).
    Sequential {
        /// Step between consecutive accesses, bytes.
        stride: u32,
    },
    /// Uniform random line within the region (dijkstra, search —
    /// pointer-chasing over a heap).
    Random,
    /// Skewed: a fraction `hot` of the region takes 90 % of the traffic
    /// (rijndael S-boxes, ispell dictionary buckets).
    Hotspot {
        /// Fraction of the region that is hot, in `(0, 1]`.
        hot: f64,
    },
    /// Short random walk: each access moves at most `max_step` bytes from
    /// the previous one (mad/lame filter state).
    Walk {
        /// Maximum displacement per access, bytes.
        max_step: u32,
    },
}

/// A contiguous chunk of the address space with a characteristic pattern.
///
/// # Examples
///
/// ```
/// use trace_synth::{AccessPattern, Region, SplitMix64};
///
/// let r = Region::new(0x4000, 2048, AccessPattern::Sequential { stride: 16 });
/// let mut cursor = r.cursor();
/// let mut rng = SplitMix64::new(1);
/// let a = cursor.next_addr(&r, &mut rng);
/// let b = cursor.next_addr(&r, &mut rng);
/// assert_eq!(b, a + 16);
/// assert!(r.contains(a) && r.contains(b));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    base: u64,
    size: u64,
    pattern: AccessPattern,
}

impl Region {
    /// Creates a region of `size` bytes at byte address `base`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero.
    pub fn new(base: u64, size: u64, pattern: AccessPattern) -> Self {
        assert!(size > 0, "regions must be non-empty");
        Self {
            base,
            size,
            pattern,
        }
    }

    /// Base byte address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The region's access pattern.
    pub fn pattern(&self) -> AccessPattern {
        self.pattern
    }

    /// Whether `addr` falls inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.base + self.size
    }

    /// Starts a fresh cursor for this region.
    pub fn cursor(&self) -> RegionCursor {
        RegionCursor { offset: 0 }
    }
}

/// Mutable iteration state over one region (owned by the generator so the
/// same `Region` description can drive several independent traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionCursor {
    offset: u64,
}

impl RegionCursor {
    /// Produces the next address for `region` and advances the cursor.
    pub fn next_addr(&mut self, region: &Region, rng: &mut SplitMix64) -> u64 {
        let size = region.size;
        let addr = match region.pattern {
            AccessPattern::Sequential { stride } => {
                let a = region.base + self.offset;
                self.offset = (self.offset + stride as u64) % size;
                a
            }
            AccessPattern::Random => region.base + rng.next_below(size),
            AccessPattern::Hotspot { hot } => {
                let hot_bytes = ((size as f64 * hot) as u64).max(1);
                if rng.next_bool(0.9) {
                    region.base + rng.next_below(hot_bytes)
                } else {
                    region.base + rng.next_below(size)
                }
            }
            AccessPattern::Walk { max_step } => {
                let step = rng.next_below(2 * max_step as u64 + 1) as i64 - max_step as i64;
                let next = self.offset as i64 + step;
                self.offset = next.rem_euclid(size as i64) as u64;
                region.base + self.offset
            }
        };
        debug_assert!(region.contains(addr));
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wraps_at_region_end() {
        let r = Region::new(100, 64, AccessPattern::Sequential { stride: 16 });
        let mut c = r.cursor();
        let mut rng = SplitMix64::new(0);
        let addrs: Vec<u64> = (0..5).map(|_| c.next_addr(&r, &mut rng)).collect();
        assert_eq!(addrs, vec![100, 116, 132, 148, 100]);
    }

    #[test]
    fn random_addresses_stay_in_region() {
        let r = Region::new(0x1000, 512, AccessPattern::Random);
        let mut c = r.cursor();
        let mut rng = SplitMix64::new(2);
        for _ in 0..1000 {
            assert!(r.contains(c.next_addr(&r, &mut rng)));
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let r = Region::new(0, 1000, AccessPattern::Hotspot { hot: 0.1 });
        let mut c = r.cursor();
        let mut rng = SplitMix64::new(3);
        let mut in_hot = 0;
        let n = 20_000;
        for _ in 0..n {
            if c.next_addr(&r, &mut rng) < 100 {
                in_hot += 1;
            }
        }
        let frac = in_hot as f64 / n as f64;
        assert!(frac > 0.85, "hot fraction {frac} should be ~0.91");
    }

    #[test]
    fn walk_moves_locally() {
        let r = Region::new(0x2000, 4096, AccessPattern::Walk { max_step: 32 });
        let mut c = r.cursor();
        let mut rng = SplitMix64::new(4);
        let mut prev = c.next_addr(&r, &mut rng);
        for _ in 0..1000 {
            let next = c.next_addr(&r, &mut rng);
            let delta = (next as i64 - prev as i64).abs();
            // Either a small move or a wrap at the region boundary.
            assert!(
                delta <= 32 || delta >= 4096 - 32,
                "walk step too large: {delta}"
            );
            prev = next;
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_region_panics() {
        let _ = Region::new(0, 0, AccessPattern::Random);
    }
}
