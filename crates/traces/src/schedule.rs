//! Phase (slot) schedules and their synthesis from idleness targets.
//!
//! A workload's bank-level behaviour is modelled as a cyclic sequence of
//! fixed-length *slots*; in each slot a subset of the reference banks is
//! active with given traffic weights. Long runs of inactive slots are what
//! produce the *useful idleness* the paper exploits, so the builder turns a
//! per-bank idleness target vector (a Table I row) into staggered idle arcs
//! with two guarantees:
//!
//! 1. every slot keeps at least one active bank (the CPU is always doing
//!    something), and
//! 2. the two busiest banks never idle simultaneously, which pins the
//!    *worst-case* idleness — the quantity that limits lifetime without
//!    re-indexing.

use crate::rng::SplitMix64;

/// Number of reference banks the schedules are expressed over (M = 4 at
/// the paper's Table I configuration).
pub const REF_BANKS: usize = 4;

/// Traffic weight given to an "almost always idle" bank (target ≥ 97 %):
/// a trickle of touches that keeps its idleness just below 100 %, like the
/// paper's 99.98 % rows.
const EPSILON_WEIGHT: f64 = 0.006;

/// Idleness above which a bank is modelled as epsilon-touched rather than
/// arc-scheduled.
const EPSILON_TARGET: f64 = 0.97;

/// One schedule slot: a duration and the per-bank traffic weights
/// (zero = inactive).
#[derive(Debug, Clone, PartialEq)]
pub struct Slot {
    /// Slot length in cycles.
    pub cycles: u32,
    /// Traffic weight per reference bank (zero means inactive).
    pub weights: [f64; REF_BANKS],
}

/// A cyclic slot schedule.
///
/// # Examples
///
/// ```
/// use trace_synth::ScheduleBuilder;
///
/// // A Table I row: bank 1 and 2 almost always idle.
/// let s = ScheduleBuilder::new([0.02, 0.999, 0.999, 0.04]).build();
/// assert_eq!(s.period_cycles(), 40 * 1000);
/// // Scheduled idleness tracks the target for arc-scheduled banks.
/// assert!((s.scheduled_idleness(0) - 0.02).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SlotSchedule {
    slots: Vec<Slot>,
    period: u64,
}

impl SlotSchedule {
    /// The slots, in period order.
    pub fn slots(&self) -> &[Slot] {
        &self.slots
    }

    /// Total cycles in one period.
    pub fn period_cycles(&self) -> u64 {
        self.period
    }

    /// The slot active at `cycle` (taken modulo the period).
    ///
    /// All slots have equal length, so this is a constant-time lookup.
    pub fn slot_at(&self, cycle: u64) -> &Slot {
        let in_period = cycle % self.period;
        let idx = (in_period / self.slots[0].cycles as u64) as usize;
        &self.slots[idx.min(self.slots.len() - 1)]
    }

    /// Fraction of the period in which `bank` has zero weight.
    ///
    /// For epsilon-touched banks (target ≥ 97 %) this is 0 — their
    /// idleness materializes as sparse gaps at *trace* level instead.
    pub fn scheduled_idleness(&self, bank: usize) -> f64 {
        let idle: u64 = self
            .slots
            .iter()
            .filter(|s| s.weights[bank] == 0.0)
            .map(|s| s.cycles as u64)
            .sum();
        idle as f64 / self.period as f64
    }
}

/// Builds a [`SlotSchedule`] from a per-bank idleness target vector.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleBuilder {
    targets: [f64; REF_BANKS],
    n_slots: usize,
    slot_cycles: u32,
    stagger_seed: u64,
}

impl ScheduleBuilder {
    /// Starts a builder for the given idleness targets (fractions in
    /// `[0, 1]`, clamped).
    pub fn new(targets: [f64; REF_BANKS]) -> Self {
        Self {
            targets: targets.map(|t| t.clamp(0.0, 1.0)),
            n_slots: 40,
            slot_cycles: 1000,
            stagger_seed: 0,
        }
    }

    /// Overrides the number of slots per period (default 40).
    ///
    /// # Panics
    ///
    /// Panics if `n_slots` is zero.
    #[must_use]
    pub fn slots(mut self, n_slots: usize) -> Self {
        assert!(n_slots > 0, "need at least one slot");
        self.n_slots = n_slots;
        self
    }

    /// Overrides the slot length in cycles (default 1000).
    ///
    /// # Panics
    ///
    /// Panics if `slot_cycles` is zero.
    #[must_use]
    pub fn slot_cycles(mut self, slot_cycles: u32) -> Self {
        assert!(slot_cycles > 0, "slots must have positive length");
        self.slot_cycles = slot_cycles;
        self
    }

    /// Varies the placement of the idle arcs (used to decorrelate
    /// benchmarks that share a target shape).
    #[must_use]
    pub fn stagger_seed(mut self, seed: u64) -> Self {
        self.stagger_seed = seed;
        self
    }

    /// Synthesizes the schedule.
    pub fn build(&self) -> SlotSchedule {
        let n = self.n_slots;
        let mut rng = SplitMix64::new(self.stagger_seed ^ 0xabcd_1234_5678_9e3f);

        // Idle arc length per bank; epsilon banks idle "everywhere" and get
        // trickle traffic instead.
        let mut idle_len = [0usize; REF_BANKS];
        let mut epsilon = [false; REF_BANKS];
        for b in 0..REF_BANKS {
            if self.targets[b] >= EPSILON_TARGET {
                epsilon[b] = true;
                idle_len[b] = n;
            } else {
                idle_len[b] = ((self.targets[b] * n as f64).round() as usize).min(n);
            }
        }

        // Rank banks by idle length; the two busiest get disjoint arcs.
        let mut order: Vec<usize> = (0..REF_BANKS).collect();
        order.sort_by_key(|&b| idle_len[b]);

        let mut idle = [[false; REF_BANKS]; 64];
        debug_assert!(n <= 64, "schedule builder supports up to 64 slots");
        let place_arc =
            |bank: usize, start: usize, len: usize, idle: &mut [[bool; REF_BANKS]; 64]| {
                for k in 0..len {
                    idle[(start + k) % n][bank] = true;
                }
            };
        // Busiest bank: arc at 0. Second busiest: immediately after, so the
        // two are disjoint whenever len0 + len1 <= n.
        place_arc(order[0], 0, idle_len[order[0]], &mut idle);
        place_arc(
            order[1],
            idle_len[order[0]],
            idle_len[order[1]].min(n - idle_len[order[0]].min(n)),
            &mut idle,
        );
        // Remaining banks: staggered pseudo-randomly.
        for &b in &order[2..] {
            let start = rng.next_below(n as u64) as usize;
            place_arc(b, start, idle_len[b], &mut idle);
        }

        // Fix-up: no slot may be fully idle. Re-activate the busiest bank
        // among the idle ones (skipping epsilon banks, which trickle).
        for slot in idle.iter_mut().take(n) {
            if slot.iter().all(|&i| i) {
                let bank = (0..REF_BANKS)
                    .filter(|&b| !epsilon[b])
                    .min_by_key(|&b| idle_len[b])
                    .unwrap_or(0);
                slot[bank] = false;
            }
        }

        // Activity weight: proportional to how busy the bank should be.
        let weight = |b: usize| (1.0 - self.targets[b]).max(0.02);
        let slots: Vec<Slot> = (0..n)
            .map(|s| {
                let mut weights = [0.0; REF_BANKS];
                for b in 0..REF_BANKS {
                    if epsilon[b] {
                        weights[b] = EPSILON_WEIGHT;
                    } else if !idle[s][b] {
                        weights[b] = weight(b);
                    }
                }
                Slot {
                    cycles: self.slot_cycles,
                    weights,
                }
            })
            .collect();
        let period = (n as u64) * self.slot_cycles as u64;
        SlotSchedule { slots, period }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scheduled_idleness_tracks_targets() {
        let targets = [0.12, 0.18, 0.50, 0.56];
        let s = ScheduleBuilder::new(targets).build();
        for (b, &target) in targets.iter().enumerate() {
            let got = s.scheduled_idleness(b);
            assert!(
                (got - target).abs() < 0.06,
                "bank {b}: scheduled {got} vs target {target}"
            );
        }
    }

    #[test]
    fn every_slot_has_an_active_bank() {
        for targets in [
            [0.9, 0.9, 0.9, 0.9],
            [0.02, 0.999, 0.999, 0.04],
            [0.5, 0.5, 0.5, 0.5],
            [1.0, 1.0, 1.0, 0.0],
        ] {
            let s = ScheduleBuilder::new(targets).build();
            for (i, slot) in s.slots().iter().enumerate() {
                assert!(
                    slot.weights.iter().any(|&w| w > 0.0),
                    "slot {i} fully idle for targets {targets:?}"
                );
            }
        }
    }

    #[test]
    fn busiest_two_banks_never_idle_together() {
        let targets = [0.1, 0.2, 0.8, 0.9];
        let s = ScheduleBuilder::new(targets).build();
        for slot in s.slots() {
            assert!(
                slot.weights[0] > 0.0 || slot.weights[1] > 0.0,
                "banks 0 and 1 idle simultaneously"
            );
        }
    }

    #[test]
    fn epsilon_banks_get_trickle_weight_everywhere() {
        let s = ScheduleBuilder::new([0.02, 0.999, 0.999, 0.04]).build();
        for slot in s.slots() {
            assert!(slot.weights[1] > 0.0 && slot.weights[1] < 0.01);
            assert!(slot.weights[2] > 0.0 && slot.weights[2] < 0.01);
        }
    }

    #[test]
    fn slot_lookup_is_cyclic() {
        let s = ScheduleBuilder::new([0.3, 0.4, 0.5, 0.6]).build();
        let period = s.period_cycles();
        assert_eq!(s.slot_at(0), s.slot_at(period));
        assert_eq!(s.slot_at(1500), s.slot_at(period + 1500));
    }

    #[test]
    fn stagger_seed_varies_placement_not_amounts() {
        let a = ScheduleBuilder::new([0.3, 0.4, 0.5, 0.6]).build();
        let b = ScheduleBuilder::new([0.3, 0.4, 0.5, 0.6])
            .stagger_seed(99)
            .build();
        assert_ne!(a, b, "different stagger should move the arcs");
        for bank in 0..REF_BANKS {
            assert!((a.scheduled_idleness(bank) - b.scheduled_idleness(bank)).abs() < 0.08);
        }
    }

    #[test]
    fn custom_slot_shape() {
        let s = ScheduleBuilder::new([0.5, 0.5, 0.5, 0.5])
            .slots(20)
            .slot_cycles(500)
            .build();
        assert_eq!(s.slots().len(), 20);
        assert_eq!(s.period_cycles(), 10_000);
    }
}
