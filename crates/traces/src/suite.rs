//! The 18 MediaBench/MiBench-flavoured benchmark profiles of Table I.
//!
//! Each profile is shaped so that its per-bank useful idleness at the
//! reference configuration (16 kB, 16 B lines, M = 4) approximates the
//! paper's published Table I row, while its access *patterns* (streaming,
//! blocked, table-lookup, pointer-chasing…) follow the real program's
//! character. The paper's numbers are embedded as
//! [`table1_reference`] so experiment reports can print paper-vs-measured
//! columns.

use crate::profile::WorkloadProfile;
use crate::reference::QUARTER_BYTES;
use crate::region::{AccessPattern, Region};
use crate::schedule::{ScheduleBuilder, REF_BANKS};

/// Broad program character, mapped to region layouts and patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Style {
    /// Buffer scans: CRC32, sha, say, tiff2bw.
    Streaming,
    /// 2-D blocked image processing: cjpeg, djpeg.
    Blocked,
    /// Table-driven crypto: rijndael.
    Crypto,
    /// Pointer/graph workloads: dijkstra.
    Graph,
    /// Strided butterflies / filter banks: fft.
    Dsp,
    /// Dictionary/lookup workloads: ispell, search.
    Dictionary,
    /// Audio codecs with filter state: adpcm, gsm, lame, mad.
    Codec,
}

/// The paper's Table I: per-bank useful idleness (fractions) of a 4-bank
/// 16 kB cache, per benchmark. Used as calibration targets and as the
/// "paper" column in reports.
pub const TABLE1_REFERENCE: [(&str, [f64; REF_BANKS]); 18] = [
    ("adpcm.dec", [0.0246, 0.9998, 0.9998, 0.0375]),
    ("cjpeg", [0.2264, 0.5324, 0.5937, 0.0951]),
    ("CRC32", [0.1854, 0.0219, 0.4438, 0.0288]),
    ("dijkstra", [0.1206, 0.1855, 0.5065, 0.5628]),
    ("djpeg", [0.6766, 0.2923, 0.2789, 0.2497]),
    ("fft_1", [0.4935, 0.4834, 0.6132, 0.0912]),
    ("fft_2", [0.5478, 0.5182, 0.5803, 0.0696]),
    ("gsmd", [0.0692, 0.9081, 0.9282, 0.0040]),
    ("gsme", [0.4917, 0.7288, 0.8934, 0.0037]),
    ("ispell", [0.6636, 0.5563, 0.4482, 0.2104]),
    ("lame", [0.5878, 0.3294, 0.3862, 0.1374]),
    ("mad", [0.3725, 0.4874, 0.3400, 0.2810]),
    ("rijndael_i", [0.8235, 0.3172, 0.2261, 0.0371]),
    ("rijndael_o", [0.2059, 0.1945, 0.9178, 0.0363]),
    ("say", [0.8853, 0.8551, 0.2659, 0.1242]),
    ("search", [0.6657, 0.2343, 0.4800, 0.5778]),
    ("sha", [0.0491, 0.9862, 0.9409, 0.0313]),
    ("tiff2bw", [0.3388, 0.1743, 0.6738, 0.7049]),
];

/// Returns the paper's Table I reference rows.
pub fn table1_reference() -> &'static [(&'static str, [f64; REF_BANKS]); 18] {
    &TABLE1_REFERENCE
}

fn style_of(name: &str) -> Style {
    match name {
        "CRC32" | "sha" | "say" | "tiff2bw" => Style::Streaming,
        "cjpeg" | "djpeg" => Style::Blocked,
        "rijndael_i" | "rijndael_o" => Style::Crypto,
        "dijkstra" => Style::Graph,
        "fft_1" | "fft_2" => Style::Dsp,
        "ispell" | "search" => Style::Dictionary,
        _ => Style::Codec,
    }
}

/// Builds the region set for one reference bank.
///
/// Placement alternates between the low and high half of the bank's 4 kB
/// quarter (`parity` varies per benchmark), which is what lets finer
/// partitionings (M = 8, 16) discover extra idleness inside a quarter —
/// the Table IV effect.
fn regions_for(bank: usize, style: Style, parity: usize) -> Vec<Region> {
    let base = bank as u64 * QUARTER_BYTES;
    let half = if (bank + parity).is_multiple_of(2) {
        0
    } else {
        2048
    };
    let at = |off: u64| base + half + off;
    let other_half = base + (half ^ 2048);
    match style {
        Style::Streaming => vec![Region::new(
            at(64),
            1792,
            AccessPattern::Sequential { stride: 16 },
        )],
        Style::Blocked => vec![
            Region::new(at(0), 1536, AccessPattern::Hotspot { hot: 0.3 }),
            Region::new(
                other_half + 256,
                1024,
                AccessPattern::Sequential { stride: 16 },
            ),
        ],
        Style::Crypto => vec![
            Region::new(at(0), 768, AccessPattern::Hotspot { hot: 0.25 }),
            Region::new(at(768), 1280, AccessPattern::Sequential { stride: 16 }),
        ],
        Style::Graph => vec![Region::new(at(0), 2048, AccessPattern::Random)],
        Style::Dsp => vec![
            Region::new(at(0), 1280, AccessPattern::Sequential { stride: 32 }),
            Region::new(at(1408), 512, AccessPattern::Walk { max_step: 64 }),
        ],
        Style::Dictionary => vec![
            Region::new(at(0), 2048, AccessPattern::Hotspot { hot: 0.5 }),
            Region::new(other_half + 512, 512, AccessPattern::Random),
        ],
        Style::Codec => vec![
            Region::new(at(0), 1280, AccessPattern::Sequential { stride: 16 }),
            Region::new(at(1408), 512, AccessPattern::Walk { max_step: 64 }),
        ],
    }
}

fn write_ratio_of(style: Style) -> f64 {
    match style {
        Style::Streaming => 0.30,
        Style::Blocked => 0.35,
        Style::Crypto => 0.20,
        Style::Graph => 0.15,
        Style::Dsp => 0.40,
        Style::Dictionary => 0.10,
        Style::Codec => 0.30,
    }
}

/// Builds one named benchmark profile from its Table I target row.
pub fn make_profile(name: &str, targets: [f64; REF_BANKS], index: usize) -> WorkloadProfile {
    let style = style_of(name);
    let parity = index % 2;
    let regions = [
        regions_for(0, style, parity),
        regions_for(1, style, parity),
        regions_for(2, style, parity),
        regions_for(3, style, parity),
    ];
    let schedule = ScheduleBuilder::new(targets)
        .stagger_seed(index as u64 * 0x9e37 + 17)
        .build();
    WorkloadProfile::new(
        name,
        regions,
        schedule,
        2,         // two macro segments,
        16 * 1024, // one cache-period apart: alias at 16 kB, split at 32 kB
        0.12,      // lingering traffic into the inactive segment
        write_ratio_of(style),
        0.5, // balanced stored values, the paper's cell baseline
    )
}

/// The full 18-benchmark suite, in the paper's Table I order.
pub fn mediabench() -> Vec<WorkloadProfile> {
    TABLE1_REFERENCE
        .iter()
        .enumerate()
        .map(|(i, (name, targets))| make_profile(name, *targets, i))
        .collect()
}

/// Looks a benchmark up by its paper name (e.g. `"adpcm.dec"`, `"sha"`).
pub fn by_name(name: &str) -> Option<WorkloadProfile> {
    TABLE1_REFERENCE
        .iter()
        .enumerate()
        .find(|(_, (n, _))| *n == name)
        .map(|(i, (n, targets))| make_profile(n, *targets, i))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_all_18_paper_benchmarks() {
        let suite = mediabench();
        assert_eq!(suite.len(), 18);
        let names: Vec<&str> = suite.iter().map(|p| p.name()).collect();
        for (paper_name, _) in TABLE1_REFERENCE {
            assert!(names.contains(&paper_name), "missing {paper_name}");
        }
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("sha").is_some());
        assert!(by_name("adpcm.dec").is_some());
        assert!(by_name("doom3").is_none());
    }

    #[test]
    fn regions_stay_within_their_quarters() {
        for p in mediabench() {
            for (bank, regions) in p.regions().iter().enumerate() {
                for r in regions {
                    let quarter_base = bank as u64 * QUARTER_BYTES;
                    assert!(
                        r.base() >= quarter_base
                            && r.base() + r.size() <= quarter_base + QUARTER_BYTES,
                        "{}: bank {bank} region {:?} escapes its quarter",
                        p.name(),
                        r
                    );
                }
            }
        }
    }

    #[test]
    fn footprints_are_double_cache_sized() {
        for p in mediabench() {
            let fp = p.footprint_bytes();
            assert!(
                fp > 16 * 1024 && fp <= 32 * 1024,
                "{}: footprint {fp} should span two 16 kB segments",
                p.name()
            );
        }
    }

    #[test]
    fn table_targets_are_probabilities() {
        for (name, t) in TABLE1_REFERENCE {
            for v in t {
                assert!((0.0..=1.0).contains(&v), "{name}: {v}");
            }
        }
    }

    #[test]
    fn styles_cover_the_suite() {
        // Smoke-check the name -> style mapping stays total.
        for (name, _) in TABLE1_REFERENCE {
            let _ = style_of(name);
        }
        assert_eq!(style_of("sha"), Style::Streaming);
        assert_eq!(style_of("dijkstra"), Style::Graph);
        assert_eq!(style_of("gsmd"), Style::Codec);
    }
}
