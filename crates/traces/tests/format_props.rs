//! Property tests for the trace parsers.
//!
//! * **Round-trip**: emit → parse is the identity on access streams,
//!   for every format, across randomized streams and batch sizes.
//! * **Malformed input**: a corrupted line is rejected with the exact
//!   1-based line number, wherever it is injected.
//! * **Strict batching**: `next_batch(max)` never overshoots `max`,
//!   even across Lackey's two-access `M` records.

use cache_sim::{Access, AccessKind};
use quickprop::Gen;
use trace_synth::formats::{write_csv, write_din, write_lackey, TraceFormat};

fn random_stream(g: &mut Gen, len: usize) -> Vec<Access> {
    (0..len)
        .map(|_| {
            // Mix tiny, page-scale and full-range addresses.
            let addr = match g.u32_in(0..3) {
                0 => g.u64_in(0..4096),
                1 => g.u64_in(0..16 * 1024 * 1024),
                _ => g.next_u64() >> g.u32_in(0..32),
            };
            if g.u32_in(0..4) == 0 {
                Access::write(addr)
            } else {
                Access::read(addr)
            }
        })
        .collect()
}

fn emit(format: TraceFormat, accesses: &[Access]) -> String {
    let mut text = String::new();
    match format {
        TraceFormat::Din => write_din(&mut text, accesses),
        TraceFormat::Lackey => write_lackey(&mut text, accesses),
        TraceFormat::Csv => write_csv(&mut text, accesses),
    }
    text
}

fn parse(format: TraceFormat, text: &str, batch: usize) -> Vec<Access> {
    let mut source = format.reader(std::io::Cursor::new(text.to_string()));
    let mut out = Vec::new();
    loop {
        let before = out.len();
        let n = source
            .next_batch(&mut out, batch)
            .expect("well-formed input parses");
        assert!(n <= batch, "next_batch overshot max ({n} > {batch})");
        assert_eq!(out.len() - before, n, "return value counts appended items");
        if n == 0 {
            return out;
        }
    }
}

#[test]
fn round_trip_is_identity_for_every_format() {
    quickprop::cases(24, |g| {
        let len = g.usize_in(0..400);
        let stream = random_stream(g, len);
        let batch = [1, 3, 7, 64, 4096][g.usize_in(0..5)];
        for format in TraceFormat::ALL {
            let text = emit(format, &stream);
            let back = parse(format, &text, batch);
            assert_eq!(back, stream, "{format} round-trip, batch {batch}");
        }
    });
}

#[test]
fn corrupted_line_is_rejected_with_its_line_number() {
    quickprop::cases(24, |g| {
        let len = 1 + g.usize_in(0..60);
        let stream = random_stream(g, len);
        for format in TraceFormat::ALL {
            let text = emit(format, &stream);
            let mut lines: Vec<&str> = text.lines().collect();
            let victim = g.usize_in(0..lines.len());
            // Each of these fails in all three formats (note `#…` would
            // be a legal CSV comment, so it is not usable here).
            let garbage = ["bogus line here", "9 zz", "X 10,,4", "0x10;w"][g.usize_in(0..4)];
            lines[victim] = garbage;
            let corrupted = lines.join("\n");
            let mut source = format.reader(std::io::Cursor::new(corrupted));
            let mut buf = Vec::new();
            let err = loop {
                match source.next_batch(&mut buf, 16) {
                    Ok(0) => panic!("{format}: corrupted input parsed cleanly"),
                    Ok(_) => continue,
                    Err(e) => break e,
                }
            };
            match err {
                trace_synth::TraceError::Parse { line, ref message } => {
                    assert_eq!(
                        line as usize,
                        victim + 1,
                        "{format}: wrong line number ({message})"
                    );
                }
                other => panic!("{format}: expected a parse error, got {other}"),
            }
        }
    });
}

#[test]
fn every_access_kind_survives_each_format() {
    let stream = vec![
        Access::read(0),
        Access::write(0),
        Access::read(u64::MAX >> 1),
        Access::write(1),
    ];
    for format in TraceFormat::ALL {
        let back = parse(format, &emit(format, &stream), 2);
        assert_eq!(back, stream, "{format}");
        assert!(back.iter().any(|a| a.kind == AccessKind::Write));
    }
}
