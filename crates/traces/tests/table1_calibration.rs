//! Calibration gate: every benchmark's measured per-bank useful idleness
//! at the reference configuration must track its Table I row.
//!
//! This is the contract of substitution S3 (DESIGN.md): the synthetic
//! traces are valid stand-ins for the paper's MediaBench traces exactly
//! to the extent this test passes.

use cache_sim::{CacheGeometry, IdentityMapping, SimConfig, Simulator};
use trace_synth::suite;

const TRACE_CYCLES: usize = if cfg!(debug_assertions) {
    160_000
} else {
    320_000
};

fn measure(profile: &trace_synth::WorkloadProfile, seed: u64) -> Vec<f64> {
    let geom = CacheGeometry::direct_mapped(
        trace_synth::reference::CACHE_BYTES,
        trace_synth::reference::LINE_BYTES,
        trace_synth::reference::BANKS,
    )
    .expect("reference geometry");
    let mut sim = Simulator::new(
        SimConfig::new(geom).expect("config"),
        Box::new(IdentityMapping),
    )
    .expect("simulator");
    for acc in profile.trace(seed).take(TRACE_CYCLES) {
        sim.step(acc);
    }
    let out = sim.finish();
    out.validate().expect("outcome invariants");
    out.useful_idleness_all()
}

#[test]
fn every_benchmark_tracks_its_table1_row() {
    for (i, (name, targets)) in suite::table1_reference().iter().enumerate() {
        let profile = suite::by_name(name).expect("profile exists");
        let measured = measure(&profile, 1000 + i as u64);
        for (b, (&got, &want)) in measured.iter().zip(targets.iter()).enumerate() {
            assert!(
                (got - want).abs() < 0.10,
                "{name}: bank {b} idleness {got:.3} vs paper {want:.3}"
            );
        }
        let avg_got = measured.iter().sum::<f64>() / 4.0;
        let avg_want = targets.iter().sum::<f64>() / 4.0;
        assert!(
            (avg_got - avg_want).abs() < 0.05,
            "{name}: average idleness {avg_got:.3} vs paper {avg_want:.3}"
        );
    }
}

#[test]
fn suite_average_matches_paper() {
    let mut sum = 0.0;
    for (i, p) in suite::mediabench().iter().enumerate() {
        let m = measure(p, 2000 + i as u64);
        sum += m.iter().sum::<f64>() / 4.0;
    }
    let avg = sum / 18.0;
    assert!(
        (avg - 0.4171).abs() < 0.04,
        "suite average idleness {avg:.4} vs paper 0.4171"
    );
}

#[test]
fn calibration_is_seed_stable() {
    // The shape must not depend on the trace seed (only the stagger of
    // random choices does).
    let p = suite::by_name("dijkstra").unwrap();
    let a = measure(&p, 1);
    let b = measure(&p, 999);
    for (bank, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() < 0.05,
            "bank {bank} idleness varies with seed: {x:.3} vs {y:.3}"
        );
    }
}
