//! Property-based tests for the cache simulator (quickprop-driven).

use cache_sim::cache::ReferenceCache;
use cache_sim::{
    Access, AccessKind, BankPower, CacheArray, CacheGeometry, IdentityMapping, IdleTracker,
    SimConfig, Simulator,
};
use quickprop::Gen;

const CASES: u32 = if cfg!(debug_assertions) { 16 } else { 64 };

/// A random valid direct-mapped/banked geometry.
fn geometry(g: &mut Gen) -> CacheGeometry {
    let size_log = g.u32_in(12..16);
    let line_log = g.u32_in(4..6);
    let bank_log = g.u32_in(1..4);
    let ways_log = g.u32_in(0..3);
    CacheGeometry::new(
        1u64 << size_log,
        1u32 << line_log,
        1u32 << ways_log,
        1u32 << bank_log.min(size_log - line_log - ways_log),
    )
    .expect("constructed geometry is valid")
}

/// The tag array agrees with a brute-force LRU reference model on
/// arbitrary geometries and address streams.
#[test]
fn cache_matches_reference_model() {
    quickprop::cases(CASES, |g| {
        let geom = geometry(g);
        let seed = g.u64_in(0..10_000);
        let mut dut = CacheArray::new(geom);
        let mut reference = ReferenceCache::new(geom).unwrap();
        let mut x = seed | 1;
        for _ in 0..3_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % (4 * geom.size_bytes());
            let got = dut.access_addr(addr, AccessKind::Read).hit;
            let want = reference.access_addr(addr);
            assert_eq!(got, want, "divergence at {addr:#x} on {geom:?}");
        }
    });
}

/// Bank power accounting: sleep cycles never exceed idle cycles, and
/// wake count equals the number of sleep episodes that ended in an
/// access.
#[test]
fn bank_power_invariants() {
    quickprop::cases(CASES, |g| {
        let seed = g.u64_in(0..10_000);
        let breakeven = g.u32_in(2..64);
        let banks = 4u32;
        let mut power = BankPower::new(banks, breakeven);
        let mut idle = IdleTracker::new(banks, breakeven);
        let mut x = seed | 1;
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            // ~20 % of cycles have no access at all.
            let accessed = if x % 10 < 2 {
                None
            } else {
                Some(((x >> 8) % banks as u64) as u32)
            };
            power.cycle(accessed);
            idle.record(accessed);
        }
        let cycles = power.cycles();
        let stats = idle.finish();
        for b in 0..banks {
            assert!(power.sleep_cycles(b) <= cycles);
            // Sleep is bounded by total idle time (open intervals included).
            assert!(power.sleep_cycles(b) <= stats[b as usize].idle_cycles + breakeven as u64);
        }
    });
}

/// Full simulator invariants and the monolithic-baseline dominance
/// hold on random mixes of accesses and idle cycles.
#[test]
fn simulator_invariants() {
    quickprop::cases(CASES, |g| {
        let geom = geometry(g);
        let seed = g.u64_in(0..10_000);
        let mut sim =
            Simulator::new(SimConfig::new(geom).unwrap(), Box::new(IdentityMapping)).unwrap();
        let mut x = seed | 1;
        for _ in 0..4_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if x % 7 == 0 {
                sim.idle_cycle();
            } else {
                let kind = if x % 3 == 0 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                };
                sim.step(Access {
                    addr: x % (2 * geom.size_bytes()),
                    kind,
                });
            }
        }
        let out = sim.finish();
        assert!(out.validate().is_ok(), "{:?}", out.validate());
        // Energy categories are individually non-negative.
        assert!(out.energy.dynamic_fj >= 0.0);
        assert!(out.energy.leakage_fj >= 0.0);
        assert!(out.energy.wake_fj >= 0.0);
        assert!(out.energy.overhead_fj >= 0.0);
    });
}

/// Flushing drops every line and the next pass over a working set
/// misses entirely.
#[test]
fn flush_semantics() {
    quickprop::cases(CASES, |g| {
        let geom = geometry(g);
        let n_lines = g.u64_in(1..64);
        let mut cache = CacheArray::new(geom);
        let lines = n_lines.min(geom.lines());
        for i in 0..lines {
            cache.access_addr(i * geom.line_bytes() as u64, AccessKind::Write);
        }
        assert!(cache.valid_lines() > 0);
        let dropped = cache.flush();
        assert!(dropped <= lines);
        assert_eq!(cache.valid_lines(), 0);
        for i in 0..lines {
            assert!(
                !cache
                    .access_addr(i * geom.line_bytes() as u64, AccessKind::Read)
                    .hit
            );
        }
    });
}

/// Idle intervals partition time exactly: per bank,
/// `idle + accesses == cycles`.
#[test]
fn idle_partition_of_time() {
    quickprop::cases(CASES, |g| {
        let seed = g.u64_in(0..10_000);
        let banks = 8u32;
        let mut idle = IdleTracker::new(banks, 10);
        let mut touches = vec![0u64; banks as usize];
        let mut x = seed | 1;
        for _ in 0..2_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let b = ((x >> 5) % banks as u64) as u32;
            touches[b as usize] += 1;
            idle.record(Some(b));
        }
        let cycles = idle.cycles();
        for (b, s) in idle.finish().iter().enumerate() {
            assert_eq!(s.idle_cycles + touches[b], cycles);
        }
    });
}
