//! Per-bank power-state machine.
//!
//! Mirrors the paper's Block Control (§III-A1): each bank has a saturating
//! counter that increments on every cycle the bank is *not* accessed and
//! resets on access. When the counter saturates at the breakeven time, the
//! bank's select signal flips the Block Selector to the low-power rail.
//! An access to a sleeping bank wakes it (with an energy penalty counted
//! by the simulator driver).

/// Power state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankState {
    /// Full rail; the bank can be accessed.
    Active,
    /// Voltage-scaled retention state (or gated, per the energy model).
    Drowsy,
}

/// The Block Control state for all `M` banks.
///
/// # Examples
///
/// ```
/// use cache_sim::{BankPower, BankState};
///
/// let mut ctl = BankPower::new(2, 4); // 2 banks, breakeven = 4 cycles
/// // Touch bank 0 repeatedly; bank 1 goes drowsy after 4 idle cycles.
/// for _ in 0..6 {
///     ctl.cycle(Some(0));
/// }
/// assert_eq!(ctl.state(0), BankState::Active);
/// assert_eq!(ctl.state(1), BankState::Drowsy);
/// // Touching bank 1 wakes it (and reports the wake for energy accounting).
/// let wake = ctl.cycle(Some(1));
/// assert!(wake.woke_bank == Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BankPower {
    breakeven: u32,
    counters: Vec<u32>,
    states: Vec<BankState>,
    sleep_cycles: Vec<u64>,
    wakes: Vec<u64>,
    cycles: u64,
}

/// What happened during one [`BankPower::cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleEvents {
    /// A sleeping bank was accessed and had to wake this cycle.
    pub woke_bank: Option<u32>,
    /// Number of banks that *entered* the drowsy state this cycle.
    pub newly_drowsy: u32,
}

impl BankPower {
    /// Creates the controller for `banks` banks with the given breakeven
    /// time in cycles (counter saturation point).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `breakeven` is zero.
    pub fn new(banks: u32, breakeven: u32) -> Self {
        assert!(banks > 0, "at least one bank");
        assert!(breakeven > 0, "breakeven must be positive");
        Self {
            breakeven,
            counters: vec![0; banks as usize],
            states: vec![BankState::Active; banks as usize],
            sleep_cycles: vec![0; banks as usize],
            wakes: vec![0; banks as usize],
            cycles: 0,
        }
    }

    /// The breakeven time in cycles.
    pub fn breakeven(&self) -> u32 {
        self.breakeven
    }

    /// Number of banks managed.
    pub fn banks(&self) -> u32 {
        self.states.len() as u32
    }

    /// Current state of `bank`.
    pub fn state(&self, bank: u32) -> BankState {
        self.states[bank as usize]
    }

    /// Total cycles `bank` has spent in the drowsy state so far.
    pub fn sleep_cycles(&self, bank: u32) -> u64 {
        self.sleep_cycles[bank as usize]
    }

    /// Number of wake-ups `bank` has paid so far.
    pub fn wakes(&self, bank: u32) -> u64 {
        self.wakes[bank as usize]
    }

    /// Total cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Advances one clock cycle in which `accessed` (if any) is the bank
    /// being accessed.
    ///
    /// Semantics per the paper:
    /// * the accessed bank resets its counter; if it was drowsy it wakes
    ///   *this* cycle (reported in the result for the wake-energy charge);
    /// * every other bank increments its saturating counter; a bank whose
    ///   counter reaches the breakeven value enters the drowsy state and
    ///   starts accumulating sleep cycles immediately.
    pub fn cycle(&mut self, accessed: Option<u32>) -> CycleEvents {
        self.cycles += 1;
        let mut ev = CycleEvents::default();
        for b in 0..self.states.len() {
            if accessed == Some(b as u32) {
                if self.states[b] == BankState::Drowsy {
                    self.states[b] = BankState::Active;
                    self.wakes[b] += 1;
                    ev.woke_bank = Some(b as u32);
                }
                self.counters[b] = 0;
            } else {
                if self.counters[b] < self.breakeven {
                    self.counters[b] += 1;
                    if self.counters[b] == self.breakeven && self.states[b] == BankState::Active {
                        self.states[b] = BankState::Drowsy;
                        ev.newly_drowsy += 1;
                    }
                }
                if self.states[b] == BankState::Drowsy {
                    self.sleep_cycles[b] += 1;
                }
            }
        }
        ev
    }

    /// Batched equivalent of calling [`BankPower::cycle`] once per
    /// element of `accessed` (one accessed bank per cycle).
    ///
    /// Instead of sweeping every bank every cycle (`O(banks)` per
    /// access), this walks *events*: counter resets on access, and
    /// scheduled drowse points exactly `breakeven` cycles after each
    /// reset, kept in a due-ordered queue with lazy invalidation. Work
    /// is `O(accesses + banks)` per call, and the controller's
    /// observable state (states, counters, sleep cycles, wakes) is
    /// settled to exactly what the per-cycle path would produce before
    /// returning — the two paths are interchangeable mid-simulation.
    ///
    /// `on_cycle(i, woke, active)` fires once per cycle, in order:
    /// `i` indexes into `accessed`, `woke` reports a wake of the
    /// accessed bank this cycle, and `active` is the number of
    /// non-drowsy banks at the end of the cycle (what leakage charging
    /// needs).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an accessed bank index is out of
    /// range.
    pub fn cycle_batch(&mut self, accessed: &[u32], mut on_cycle: impl FnMut(usize, bool, u32)) {
        let banks = self.states.len();
        let be = self.breakeven as u64;
        let c0 = self.cycles;
        // Virtual last-reset cycle per bank, reconstructed from the
        // saturating counters (exact for counters below saturation; for
        // saturated/drowsy banks only `gap >= breakeven` matters).
        let mut last_reset: Vec<u64> = (0..banks).map(|b| c0 - self.counters[b] as u64).collect();
        let mut drowsy: Vec<bool> = self
            .states
            .iter()
            .map(|s| *s == BankState::Drowsy)
            .collect();
        // First cycle whose sleep has not been credited yet (valid only
        // while `drowsy[b]`). Banks already drowsy at entry have been
        // credited through cycle c0 by the per-cycle path.
        let mut sleep_from: Vec<u64> = vec![0; banks];
        let mut active = 0u32;
        for b in 0..banks {
            if drowsy[b] {
                sleep_from[b] = c0 + 1;
            } else {
                active += 1;
            }
        }
        // Due-ordered drowse queue. Entry banks drowse (unless re-reset)
        // at `last_reset + breakeven`; those dues all precede any due
        // scheduled inside the batch, so sorting the entry set keeps the
        // whole queue monotone with plain push_back.
        let mut pending: Vec<(u64, u32)> = (0..banks)
            .filter(|&b| !drowsy[b])
            .map(|b| (last_reset[b] + be, b as u32))
            .collect();
        pending.sort_unstable();
        let mut pending: std::collections::VecDeque<(u64, u32)> = pending.into();

        for (i, &bank) in accessed.iter().enumerate() {
            debug_assert!((bank as usize) < banks, "bank {bank} out of range");
            let c = c0 + i as u64 + 1;
            let bi = bank as usize;
            let mut woke = false;
            if drowsy[bi] {
                drowsy[bi] = false;
                self.wakes[bi] += 1;
                // Sleep accrued over [sleep_from, c - 1].
                self.sleep_cycles[bi] += c - sleep_from[bi];
                active += 1;
                woke = true;
            }
            last_reset[bi] = c;
            pending.push_back((c + be, bank));
            while let Some(&(due, db)) = pending.front() {
                if due > c {
                    break;
                }
                pending.pop_front();
                let dbi = db as usize;
                // Stale entries (bank re-reset since scheduling, or
                // already drowsy via an earlier entry) are skipped.
                if !drowsy[dbi] && last_reset[dbi] + be == due {
                    drowsy[dbi] = true;
                    sleep_from[dbi] = due;
                    active -= 1;
                }
            }
            on_cycle(i, woke, active);
        }

        // Settle the controller state to end-of-batch.
        let cn = c0 + accessed.len() as u64;
        self.cycles = cn;
        for b in 0..banks {
            let gap = cn - last_reset[b];
            self.counters[b] = gap.min(be) as u32;
            if drowsy[b] {
                self.states[b] = BankState::Drowsy;
                // Sleep accrued over [sleep_from, cn].
                self.sleep_cycles[b] += (cn + 1).saturating_sub(sleep_from[b]);
            } else {
                self.states[b] = BankState::Active;
            }
        }
    }

    /// Fraction of elapsed time `bank` spent asleep.
    pub fn sleep_fraction(&self, bank: u32) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.sleep_cycles[bank as usize] as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_sleeps_after_breakeven_idle_cycles() {
        let mut ctl = BankPower::new(1, 5);
        for i in 0..5 {
            assert_eq!(ctl.state(0), BankState::Active, "cycle {i}");
            ctl.cycle(None);
        }
        assert_eq!(ctl.state(0), BankState::Drowsy);
        // Sleep started the cycle the counter saturated.
        assert_eq!(ctl.sleep_cycles(0), 1);
    }

    #[test]
    fn access_resets_counter_and_prevents_sleep() {
        let mut ctl = BankPower::new(1, 4);
        for _ in 0..10 {
            ctl.cycle(None);
            ctl.cycle(None);
            ctl.cycle(Some(0)); // keeps resetting before saturation
        }
        assert_eq!(ctl.state(0), BankState::Active);
        assert_eq!(ctl.sleep_cycles(0), 0);
        assert_eq!(ctl.wakes(0), 0);
    }

    #[test]
    fn wake_event_reported_once() {
        let mut ctl = BankPower::new(2, 2);
        ctl.cycle(Some(0));
        ctl.cycle(Some(0));
        ctl.cycle(Some(0));
        assert_eq!(ctl.state(1), BankState::Drowsy);
        let ev = ctl.cycle(Some(1));
        assert_eq!(ev.woke_bank, Some(1));
        assert_eq!(ctl.wakes(1), 1);
        let ev = ctl.cycle(Some(1));
        assert_eq!(ev.woke_bank, None, "already awake");
    }

    #[test]
    fn sleep_accounting_matches_interval_arithmetic() {
        // One access, then N idle cycles: sleep = N - (BE - 1).
        let be = 6u32;
        let idle = 40u64;
        let mut ctl = BankPower::new(1, be);
        ctl.cycle(Some(0));
        for _ in 0..idle {
            ctl.cycle(None);
        }
        assert_eq!(ctl.sleep_cycles(0), idle - (be as u64 - 1));
    }

    #[test]
    fn sleep_fraction_bounds() {
        let mut ctl = BankPower::new(4, 3);
        for i in 0..1000u64 {
            ctl.cycle(Some((i % 2) as u32));
        }
        for b in 0..4 {
            let f = ctl.sleep_fraction(b);
            assert!((0.0..=1.0).contains(&f));
        }
        // Banks 0 and 1 always re-touched; banks 2,3 asleep almost always.
        assert_eq!(ctl.sleep_fraction(0), 0.0);
        assert!(ctl.sleep_fraction(2) > 0.95);
    }

    #[test]
    #[should_panic(expected = "breakeven")]
    fn zero_breakeven_panics() {
        let _ = BankPower::new(1, 0);
    }

    /// Drives a per-cycle and a batched controller over the same access
    /// stream (split into ragged batches) and asserts identical
    /// observable state plus identical per-cycle events.
    fn assert_batch_matches(banks: u32, breakeven: u32, accesses: &[u32], batch_sizes: &[usize]) {
        let mut reference = BankPower::new(banks, breakeven);
        let mut events = Vec::new();
        for &b in accesses {
            let ev = reference.cycle(Some(b));
            let active = (0..banks)
                .filter(|&x| reference.state(x) == BankState::Active)
                .count() as u32;
            events.push((ev.woke_bank.is_some(), active));
        }

        let mut batched = BankPower::new(banks, breakeven);
        let mut got = Vec::new();
        let mut rest = accesses;
        let mut sizes = batch_sizes.iter().cycle();
        while !rest.is_empty() {
            let n = (*sizes.next().unwrap()).clamp(1, rest.len());
            let (head, tail) = rest.split_at(n);
            batched.cycle_batch(head, |_, woke, active| got.push((woke, active)));
            rest = tail;
        }

        assert_eq!(got, events, "per-cycle events diverged");
        assert_eq!(batched.cycles, reference.cycles);
        assert_eq!(batched.counters, reference.counters);
        assert_eq!(batched.states, reference.states);
        assert_eq!(batched.sleep_cycles, reference.sleep_cycles);
        assert_eq!(batched.wakes, reference.wakes);
    }

    #[test]
    fn cycle_batch_matches_per_cycle_on_random_traffic() {
        let mut x = 0x1234_5678_9abc_def0u64;
        for &(banks, be) in &[(2u32, 3u32), (4, 7), (8, 64), (3, 5)] {
            let accesses: Vec<u32> = (0..5000)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // Skewed traffic so some banks actually drowse.
                    let r = (x >> 33) % (banks as u64 * 4);
                    (r % banks as u64) as u32 * u32::from(r < banks as u64 * 2)
                })
                .collect();
            assert_batch_matches(banks, be, &accesses, &[1, 2, 3, 64, 4096]);
        }
    }

    #[test]
    fn cycle_batch_matches_on_phase_traffic() {
        // Long single-bank phases: maximal drowse/wake churn.
        let accesses: Vec<u32> = (0..4000u64).map(|i| ((i / 100) % 4) as u32).collect();
        assert_batch_matches(4, 10, &accesses, &[7]);
        assert_batch_matches(4, 10, &accesses, &[4000]);
    }
}
