//! Per-bank power-state machine.
//!
//! Mirrors the paper's Block Control (§III-A1): each bank has a saturating
//! counter that increments on every cycle the bank is *not* accessed and
//! resets on access. When the counter saturates at the breakeven time, the
//! bank's select signal flips the Block Selector to the low-power rail.
//! An access to a sleeping bank wakes it (with an energy penalty counted
//! by the simulator driver).

/// Power state of one bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankState {
    /// Full rail; the bank can be accessed.
    Active,
    /// Voltage-scaled retention state (or gated, per the energy model).
    Drowsy,
}

/// The Block Control state for all `M` banks.
///
/// # Examples
///
/// ```
/// use cache_sim::{BankPower, BankState};
///
/// let mut ctl = BankPower::new(2, 4); // 2 banks, breakeven = 4 cycles
/// // Touch bank 0 repeatedly; bank 1 goes drowsy after 4 idle cycles.
/// for _ in 0..6 {
///     ctl.cycle(Some(0));
/// }
/// assert_eq!(ctl.state(0), BankState::Active);
/// assert_eq!(ctl.state(1), BankState::Drowsy);
/// // Touching bank 1 wakes it (and reports the wake for energy accounting).
/// let wake = ctl.cycle(Some(1));
/// assert!(wake.woke_bank == Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BankPower {
    breakeven: u32,
    counters: Vec<u32>,
    states: Vec<BankState>,
    sleep_cycles: Vec<u64>,
    wakes: Vec<u64>,
    cycles: u64,
}

/// What happened during one [`BankPower::cycle`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CycleEvents {
    /// A sleeping bank was accessed and had to wake this cycle.
    pub woke_bank: Option<u32>,
    /// Number of banks that *entered* the drowsy state this cycle.
    pub newly_drowsy: u32,
}

impl BankPower {
    /// Creates the controller for `banks` banks with the given breakeven
    /// time in cycles (counter saturation point).
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero or `breakeven` is zero.
    pub fn new(banks: u32, breakeven: u32) -> Self {
        assert!(banks > 0, "at least one bank");
        assert!(breakeven > 0, "breakeven must be positive");
        Self {
            breakeven,
            counters: vec![0; banks as usize],
            states: vec![BankState::Active; banks as usize],
            sleep_cycles: vec![0; banks as usize],
            wakes: vec![0; banks as usize],
            cycles: 0,
        }
    }

    /// The breakeven time in cycles.
    pub fn breakeven(&self) -> u32 {
        self.breakeven
    }

    /// Number of banks managed.
    pub fn banks(&self) -> u32 {
        self.states.len() as u32
    }

    /// Current state of `bank`.
    pub fn state(&self, bank: u32) -> BankState {
        self.states[bank as usize]
    }

    /// Total cycles `bank` has spent in the drowsy state so far.
    pub fn sleep_cycles(&self, bank: u32) -> u64 {
        self.sleep_cycles[bank as usize]
    }

    /// Number of wake-ups `bank` has paid so far.
    pub fn wakes(&self, bank: u32) -> u64 {
        self.wakes[bank as usize]
    }

    /// Total cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Advances one clock cycle in which `accessed` (if any) is the bank
    /// being accessed.
    ///
    /// Semantics per the paper:
    /// * the accessed bank resets its counter; if it was drowsy it wakes
    ///   *this* cycle (reported in the result for the wake-energy charge);
    /// * every other bank increments its saturating counter; a bank whose
    ///   counter reaches the breakeven value enters the drowsy state and
    ///   starts accumulating sleep cycles immediately.
    pub fn cycle(&mut self, accessed: Option<u32>) -> CycleEvents {
        self.cycles += 1;
        let mut ev = CycleEvents::default();
        for b in 0..self.states.len() {
            if accessed == Some(b as u32) {
                if self.states[b] == BankState::Drowsy {
                    self.states[b] = BankState::Active;
                    self.wakes[b] += 1;
                    ev.woke_bank = Some(b as u32);
                }
                self.counters[b] = 0;
            } else {
                if self.counters[b] < self.breakeven {
                    self.counters[b] += 1;
                    if self.counters[b] == self.breakeven && self.states[b] == BankState::Active {
                        self.states[b] = BankState::Drowsy;
                        ev.newly_drowsy += 1;
                    }
                }
                if self.states[b] == BankState::Drowsy {
                    self.sleep_cycles[b] += 1;
                }
            }
        }
        ev
    }

    /// Fraction of elapsed time `bank` spent asleep.
    pub fn sleep_fraction(&self, bank: u32) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.sleep_cycles[bank as usize] as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_sleeps_after_breakeven_idle_cycles() {
        let mut ctl = BankPower::new(1, 5);
        for i in 0..5 {
            assert_eq!(ctl.state(0), BankState::Active, "cycle {i}");
            ctl.cycle(None);
        }
        assert_eq!(ctl.state(0), BankState::Drowsy);
        // Sleep started the cycle the counter saturated.
        assert_eq!(ctl.sleep_cycles(0), 1);
    }

    #[test]
    fn access_resets_counter_and_prevents_sleep() {
        let mut ctl = BankPower::new(1, 4);
        for _ in 0..10 {
            ctl.cycle(None);
            ctl.cycle(None);
            ctl.cycle(Some(0)); // keeps resetting before saturation
        }
        assert_eq!(ctl.state(0), BankState::Active);
        assert_eq!(ctl.sleep_cycles(0), 0);
        assert_eq!(ctl.wakes(0), 0);
    }

    #[test]
    fn wake_event_reported_once() {
        let mut ctl = BankPower::new(2, 2);
        ctl.cycle(Some(0));
        ctl.cycle(Some(0));
        ctl.cycle(Some(0));
        assert_eq!(ctl.state(1), BankState::Drowsy);
        let ev = ctl.cycle(Some(1));
        assert_eq!(ev.woke_bank, Some(1));
        assert_eq!(ctl.wakes(1), 1);
        let ev = ctl.cycle(Some(1));
        assert_eq!(ev.woke_bank, None, "already awake");
    }

    #[test]
    fn sleep_accounting_matches_interval_arithmetic() {
        // One access, then N idle cycles: sleep = N - (BE - 1).
        let be = 6u32;
        let idle = 40u64;
        let mut ctl = BankPower::new(1, be);
        ctl.cycle(Some(0));
        for _ in 0..idle {
            ctl.cycle(None);
        }
        assert_eq!(ctl.sleep_cycles(0), idle - (be as u64 - 1));
    }

    #[test]
    fn sleep_fraction_bounds() {
        let mut ctl = BankPower::new(4, 3);
        for i in 0..1000u64 {
            ctl.cycle(Some((i % 2) as u32));
        }
        for b in 0..4 {
            let f = ctl.sleep_fraction(b);
            assert!((0.0..=1.0).contains(&f));
        }
        // Banks 0 and 1 always re-touched; banks 2,3 asleep almost always.
        assert_eq!(ctl.sleep_fraction(0), 0.0);
        assert!(ctl.sleep_fraction(2) > 0.95);
    }

    #[test]
    #[should_panic(expected = "breakeven")]
    fn zero_breakeven_panics() {
        let _ = BankPower::new(1, 0);
    }
}
