//! Tag-array cache model: direct-mapped and set-associative with a
//! pluggable replacement policy (LRU by default).

use crate::error::SimError;
use crate::geometry::CacheGeometry;
use crate::replacement::ReplacementPolicy;
use std::sync::Arc;

/// Type of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Whether the access hit.
    pub hit: bool,
    /// The physical set that was accessed.
    pub set: u64,
    /// The tag of the line that was evicted on a miss, if any.
    pub evicted_tag: Option<u64>,
    /// Whether the evicted line was dirty (needs a write-back).
    pub writeback: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

/// The tag store of a cache: `sets × ways` entries with LRU replacement.
///
/// The array works on *physical* set indices — the caller (the simulator
/// driver) applies any bank remapping before calling [`CacheArray::access`].
///
/// # Examples
///
/// ```
/// use cache_sim::{AccessKind, CacheArray, CacheGeometry};
///
/// let g = CacheGeometry::direct_mapped(1024, 16, 1)?;
/// let mut cache = CacheArray::new(g);
/// let set = g.set_of(0x40);
/// let tag = g.tag_of(0x40);
/// assert!(!cache.access(set, tag, AccessKind::Read).hit); // cold miss
/// assert!(cache.access(set, tag, AccessKind::Read).hit);  // now warm
/// # Ok::<(), cache_sim::SimError>(())
/// ```
#[derive(Clone)]
pub struct CacheArray {
    geometry: CacheGeometry,
    ways: Vec<Way>,
    clock: u64,
    flushes: u64,
    /// `None` = the built-in LRU fast path (byte-for-byte the historic
    /// victim order); `Some` = a registered policy choosing among full
    /// sets. Invalid ways are always filled first either way.
    replacement: Option<Arc<dyn ReplacementPolicy>>,
    /// Scratch stamp buffer handed to the policy (no per-miss alloc).
    stamp_buf: Vec<u64>,
}

impl std::fmt::Debug for CacheArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheArray")
            .field("geometry", &self.geometry)
            .field("clock", &self.clock)
            .field("flushes", &self.flushes)
            .field(
                "replacement",
                &self.replacement.as_deref().map_or("lru", |p| p.name()),
            )
            .finish_non_exhaustive()
    }
}

impl CacheArray {
    /// Creates an empty (all-invalid) cache for `geometry` with the
    /// built-in LRU replacement.
    pub fn new(geometry: CacheGeometry) -> Self {
        let n = (geometry.sets() * geometry.ways() as u64) as usize;
        Self {
            geometry,
            ways: vec![Way::default(); n],
            clock: 0,
            flushes: 0,
            replacement: None,
            stamp_buf: Vec::new(),
        }
    }

    /// Creates an empty cache that evicts via a registered
    /// [`ReplacementPolicy`] instead of the built-in LRU.
    pub fn with_replacement(geometry: CacheGeometry, policy: Arc<dyn ReplacementPolicy>) -> Self {
        let mut array = Self::new(geometry);
        array.stamp_buf = Vec::with_capacity(geometry.ways() as usize);
        array.replacement = Some(policy);
        array
    }

    /// The active replacement policy's registry name.
    pub fn replacement_name(&self) -> &str {
        self.replacement.as_deref().map_or("lru", |p| p.name())
    }

    /// The geometry this array was built for.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Number of flushes performed so far.
    pub fn flushes(&self) -> u64 {
        self.flushes
    }

    /// Performs one access to physical set `set` with tag `tag`.
    ///
    /// On a miss the line is filled, evicting the LRU way of the set.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `set` is outside the geometry.
    pub fn access(&mut self, set: u64, tag: u64, kind: AccessKind) -> AccessResult {
        debug_assert!(set < self.geometry.sets(), "set {set} out of range");
        self.clock += 1;
        let ways = self.geometry.ways() as usize;
        let base = set as usize * ways;
        let slots = &mut self.ways[base..base + ways];

        // Hit?
        for w in slots.iter_mut() {
            if w.valid && w.tag == tag {
                w.stamp = self.clock;
                if kind == AccessKind::Write {
                    w.dirty = true;
                }
                return AccessResult {
                    hit: true,
                    set,
                    evicted_tag: None,
                    writeback: false,
                };
            }
        }
        // Miss: fill the first invalid way, else ask the policy (the
        // built-in LRU path keeps its historic one-expression form).
        let victim = match &self.replacement {
            None => slots
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| if w.valid { w.stamp + 1 } else { 0 })
                .map(|(i, _)| i)
                .expect("at least one way"),
            Some(policy) => match slots.iter().position(|w| !w.valid) {
                Some(invalid) => invalid,
                None => {
                    self.stamp_buf.clear();
                    self.stamp_buf.extend(slots.iter().map(|w| w.stamp));
                    policy.victim(&self.stamp_buf).min(ways - 1)
                }
            },
        };
        let evicted_tag = slots[victim].valid.then_some(slots[victim].tag);
        let writeback = slots[victim].valid && slots[victim].dirty;
        slots[victim] = Way {
            tag,
            valid: true,
            dirty: kind == AccessKind::Write,
            stamp: self.clock,
        };
        AccessResult {
            hit: false,
            set,
            evicted_tag,
            writeback,
        }
    }

    /// Convenience: access by address (identity bank mapping).
    pub fn access_addr(&mut self, addr: u64, kind: AccessKind) -> AccessResult {
        let set = self.geometry.set_of(addr);
        let tag = self.geometry.tag_of(addr);
        self.access(set, tag, kind)
    }

    /// Invalidates the whole cache (the paper ties re-indexing updates to
    /// flushes, §III-A3). Returns the number of valid lines dropped.
    pub fn flush(&mut self) -> u64 {
        self.flushes += 1;
        let mut dropped = 0;
        for w in &mut self.ways {
            if w.valid {
                dropped += 1;
            }
            *w = Way::default();
        }
        dropped
    }

    /// Number of currently valid lines.
    pub fn valid_lines(&self) -> u64 {
        self.ways.iter().filter(|w| w.valid).count() as u64
    }

    /// Fraction of lines currently valid.
    pub fn occupancy(&self) -> f64 {
        self.valid_lines() as f64 / self.ways.len() as f64
    }

    /// Checks a tag's presence without updating any state (no LRU touch).
    pub fn probe(&self, set: u64, tag: u64) -> bool {
        let ways = self.geometry.ways() as usize;
        let base = set as usize * ways;
        self.ways[base..base + ways]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }
}

/// A trivially correct reference model (fully-associative search over an
/// address set per cache set) used to cross-check [`CacheArray`] in tests.
#[derive(Debug, Clone)]
pub struct ReferenceCache {
    geometry: CacheGeometry,
    sets: Vec<Vec<u64>>, // per-set MRU-ordered tag list
}

impl ReferenceCache {
    /// Creates an empty reference model.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidGeometry`] if the geometry has zero sets
    /// (cannot happen for a validated [`CacheGeometry`]).
    pub fn new(geometry: CacheGeometry) -> Result<Self, SimError> {
        Ok(Self {
            geometry,
            sets: vec![Vec::new(); geometry.sets() as usize],
        })
    }

    /// Accesses and returns whether it hit, maintaining LRU order.
    pub fn access_addr(&mut self, addr: u64) -> bool {
        let set = self.geometry.set_of(addr) as usize;
        let tag = self.geometry.tag_of(addr);
        let list = &mut self.sets[set];
        if let Some(pos) = list.iter().position(|&t| t == tag) {
            list.remove(pos);
            list.insert(0, tag);
            true
        } else {
            list.insert(0, tag);
            list.truncate(self.geometry.ways() as usize);
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::direct_mapped(4096, 16, 4).unwrap()
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = CacheArray::new(geom());
        assert!(!c.access_addr(0x100, AccessKind::Read).hit);
        assert!(c.access_addr(0x100, AccessKind::Read).hit);
        assert!(c.access_addr(0x104, AccessKind::Read).hit, "same line");
    }

    #[test]
    fn conflict_eviction_direct_mapped() {
        let g = geom();
        let mut c = CacheArray::new(g);
        let a = 0x100u64;
        let b = a + g.size_bytes(); // same set, different tag
        assert!(!c.access_addr(a, AccessKind::Read).hit);
        let res = c.access_addr(b, AccessKind::Read);
        assert!(!res.hit);
        assert_eq!(res.evicted_tag, Some(g.tag_of(a)));
        assert!(!c.access_addr(a, AccessKind::Read).hit, "a was evicted");
    }

    #[test]
    fn lru_replacement_in_set_associative() {
        let g = CacheGeometry::new(4096, 16, 2, 1).unwrap();
        let mut c = CacheArray::new(g);
        let s = 0x100u64;
        let conflict1 = s + g.size_bytes(); // same set
        let conflict2 = s + 2 * g.size_bytes();
        c.access_addr(s, AccessKind::Read);
        c.access_addr(conflict1, AccessKind::Read);
        // Touch `s` so `conflict1` becomes LRU.
        c.access_addr(s, AccessKind::Read);
        c.access_addr(conflict2, AccessKind::Read); // evicts conflict1
        assert!(c.access_addr(s, AccessKind::Read).hit);
        assert!(!c.access_addr(conflict1, AccessKind::Read).hit);
    }

    #[test]
    fn flush_invalidates_everything() {
        let mut c = CacheArray::new(geom());
        for i in 0..64u64 {
            c.access_addr(i * 16, AccessKind::Write);
        }
        assert_eq!(c.valid_lines(), 64);
        assert_eq!(c.flush(), 64);
        assert_eq!(c.valid_lines(), 0);
        assert_eq!(c.flushes(), 1);
        assert!(!c.access_addr(0, AccessKind::Read).hit);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let g = CacheGeometry::new(4096, 16, 2, 1).unwrap();
        let mut c = CacheArray::new(g);
        let s = 0x100u64;
        let t = g.tag_of(s);
        c.access_addr(s, AccessKind::Read);
        assert!(c.probe(g.set_of(s), t));
        assert!(!c.probe(g.set_of(s), t + 1));
    }

    #[test]
    fn registered_lru_matches_builtin_victim_order() {
        use crate::replacement::ReplacementRegistry;
        let g = CacheGeometry::new(4096, 16, 4, 1).unwrap();
        let mut builtin = CacheArray::new(g);
        let lru = ReplacementRegistry::global().resolve("lru").unwrap();
        let mut registered = CacheArray::with_replacement(g, lru);
        let mut x = 0x1234_5678_u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let addr = x % (16 * 4096);
            let kind = if x.is_multiple_of(3) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            assert_eq!(
                builtin.access_addr(addr, kind),
                registered.access_addr(addr, kind),
                "registered lru must reproduce the built-in victim order"
            );
        }
    }

    #[test]
    fn mru_diverges_from_lru_on_a_looping_working_set() {
        use crate::replacement::ReplacementRegistry;
        // A cyclic loop one line larger than the associativity: LRU
        // misses every access (classic thrash), MRU retains most of the
        // loop, so their hit counts must differ.
        let g = CacheGeometry::new(4 * 16, 16, 4, 1).unwrap(); // 1 set, 4 ways
        let reg = ReplacementRegistry::global();
        let mut lru = CacheArray::with_replacement(g, reg.resolve("lru").unwrap());
        let mut mru = CacheArray::with_replacement(g, reg.resolve("mru").unwrap());
        let period = g.size_bytes();
        let (mut lru_hits, mut mru_hits) = (0u64, 0u64);
        for _round in 0..100u64 {
            for line in 0..5u64 {
                let addr = 0x100 + line * period; // 5 tags, same single set
                lru_hits += u64::from(lru.access_addr(addr, AccessKind::Read).hit);
                mru_hits += u64::from(mru.access_addr(addr, AccessKind::Read).hit);
            }
        }
        assert_eq!(lru_hits, 0, "LRU thrashes a loop of ways + 1 lines");
        assert!(
            mru_hits > 300,
            "MRU keeps the loop mostly resident: {mru_hits}"
        );
    }

    #[test]
    fn matches_reference_model_on_mixed_traffic() {
        for (ways, banks) in [(1u32, 4u32), (2, 2), (4, 1)] {
            let g = CacheGeometry::new(4096, 16, ways, banks).unwrap();
            let mut dut = CacheArray::new(g);
            let mut reference = ReferenceCache::new(g).unwrap();
            // Deterministic pseudo-random address stream.
            let mut x = 0x9e3779b97f4a7c15u64;
            for _ in 0..20_000 {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = x % (16 * 4096);
                let got = dut.access_addr(addr, AccessKind::Read).hit;
                let want = reference.access_addr(addr);
                assert_eq!(got, want, "divergence at addr {addr:#x} (ways={ways})");
            }
        }
    }
}
