//! Cache geometry: sizes, index/tag/offset splitting, bank extraction.

use crate::error::SimError;
use sram_power::BankArray;

/// Geometric description of a banked cache.
///
/// Follows the paper's §III-A1 notation: a cache of `L = 2^n` lines
/// (direct-mapped) or sets (set-associative) partitioned into `M = 2^p`
/// uniform banks of `2^(n-p)` lines each. The bank is selected by the `p`
/// MSBs of the index; the `n − p` LSBs address the line within the bank.
///
/// # Examples
///
/// ```
/// use cache_sim::CacheGeometry;
///
/// // The paper's reference configuration: 16 kB, 16 B lines, M = 4.
/// let g = CacheGeometry::direct_mapped(16 * 1024, 16, 4)?;
/// assert_eq!(g.sets(), 1024);
/// assert_eq!(g.sets_per_bank(), 256);
/// assert_eq!(g.index_bits(), 10);
/// assert_eq!(g.bank_bits(), 2);
///
/// // The worked Example 1 of the paper (N = 256 lines, M = 4):
/// // address 70 (line index) lives in bank 70 / 64 = 1, slot 70 % 64 = 6.
/// let g = CacheGeometry::direct_mapped(256 * 16, 16, 4)?;
/// let addr = 70 * 16;
/// assert_eq!(g.bank_of_set(g.set_of(addr)), 1);
/// assert_eq!(g.slot_in_bank(g.set_of(addr)), 6);
/// # Ok::<(), cache_sim::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    size_bytes: u64,
    line_bytes: u32,
    ways: u32,
    banks: u32,
    addr_bits: u32,
}

fn is_pow2(v: u64) -> bool {
    v != 0 && v & (v - 1) == 0
}

impl CacheGeometry {
    /// Creates a geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidGeometry`] unless all of:
    /// * `size_bytes`, `line_bytes`, `ways`, `banks` are powers of two,
    /// * the cache holds at least one set per bank,
    /// * `addr_bits` (fixed at 32 here) covers the cache.
    pub fn new(size_bytes: u64, line_bytes: u32, ways: u32, banks: u32) -> Result<Self, SimError> {
        if !is_pow2(size_bytes) {
            return Err(SimError::InvalidGeometry {
                name: "size_bytes",
                value: size_bytes,
                expected: "a power of two",
            });
        }
        if !is_pow2(line_bytes as u64) {
            return Err(SimError::InvalidGeometry {
                name: "line_bytes",
                value: line_bytes as u64,
                expected: "a power of two",
            });
        }
        if !is_pow2(ways as u64) {
            return Err(SimError::InvalidGeometry {
                name: "ways",
                value: ways as u64,
                expected: "a power of two",
            });
        }
        if !is_pow2(banks as u64) {
            return Err(SimError::InvalidGeometry {
                name: "banks",
                value: banks as u64,
                expected: "a power of two",
            });
        }
        let line_capacity = size_bytes / line_bytes as u64;
        if line_capacity == 0 || !line_capacity.is_multiple_of(ways as u64) {
            return Err(SimError::InvalidGeometry {
                name: "ways",
                value: ways as u64,
                expected: "ways <= number of lines",
            });
        }
        let sets = line_capacity / ways as u64;
        if sets < banks as u64 {
            return Err(SimError::InvalidGeometry {
                name: "banks",
                value: banks as u64,
                expected: "at most one bank per set",
            });
        }
        let g = Self {
            size_bytes,
            line_bytes,
            ways,
            banks,
            addr_bits: 32,
        };
        if g.offset_bits() + g.index_bits() >= g.addr_bits {
            return Err(SimError::InvalidGeometry {
                name: "size_bytes",
                value: size_bytes,
                expected: "a cache smaller than the address space",
            });
        }
        Ok(g)
    }

    /// Creates a direct-mapped geometry (the paper's configuration).
    ///
    /// # Errors
    ///
    /// Same as [`CacheGeometry::new`].
    pub fn direct_mapped(size_bytes: u64, line_bytes: u32, banks: u32) -> Result<Self, SimError> {
        Self::new(size_bytes, line_bytes, 1, banks)
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Line (block) size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Associativity (1 = direct-mapped).
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Number of uniform banks `M`.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Physical address width in bits.
    pub fn addr_bits(&self) -> u32 {
        self.addr_bits
    }

    /// Total number of cache lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }

    /// Number of sets (`lines / ways`).
    pub fn sets(&self) -> u64 {
        self.lines() / self.ways as u64
    }

    /// Sets held by each bank.
    pub fn sets_per_bank(&self) -> u64 {
        self.sets() / self.banks as u64
    }

    /// Number of byte-offset bits within a line.
    pub fn offset_bits(&self) -> u32 {
        self.line_bytes.trailing_zeros()
    }

    /// Number of index bits `n`.
    pub fn index_bits(&self) -> u32 {
        self.sets().trailing_zeros()
    }

    /// Number of bank-select bits `p` (the MSBs of the index).
    pub fn bank_bits(&self) -> u32 {
        self.banks.trailing_zeros()
    }

    /// Number of tag bits per line.
    pub fn tag_bits(&self) -> u32 {
        self.addr_bits - self.offset_bits() - self.index_bits()
    }

    /// Bits per tag entry as stored (tag + valid bit).
    pub fn tag_entry_bits(&self) -> u32 {
        self.tag_bits() + 1
    }

    /// The set index of `addr`.
    pub fn set_of(&self, addr: u64) -> u64 {
        (addr >> self.offset_bits()) & (self.sets() - 1)
    }

    /// The tag of `addr`.
    pub fn tag_of(&self, addr: u64) -> u64 {
        addr >> (self.offset_bits() + self.index_bits())
    }

    /// The logical bank holding `set` (the `p` MSBs of the index).
    pub fn bank_of_set(&self, set: u64) -> u32 {
        (set >> (self.index_bits() - self.bank_bits())) as u32
    }

    /// The slot (set-within-bank) of `set` (the `n − p` LSBs).
    pub fn slot_in_bank(&self, set: u64) -> u64 {
        set & (self.sets_per_bank() - 1)
    }

    /// Recombines a bank id and slot into a physical set index.
    pub fn set_from_bank_slot(&self, bank: u32, slot: u64) -> u64 {
        ((bank as u64) << (self.index_bits() - self.bank_bits())) | slot
    }

    /// SRAM array description of one bank (for the power models).
    pub fn bank_array(&self) -> BankArray {
        BankArray::new(
            self.sets_per_bank() * self.ways as u64,
            self.line_bytes as u64 * 8,
            self.tag_entry_bits() as u64,
        )
        .expect("validated geometry always yields a valid array")
    }

    /// SRAM array description of the whole cache as one monolithic block.
    pub fn monolithic_array(&self) -> BankArray {
        BankArray::new(
            self.lines(),
            self.line_bytes as u64 * 8,
            self.tag_entry_bits() as u64,
        )
        .expect("validated geometry always yields a valid array")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_geometry() {
        let g = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
        assert_eq!(g.lines(), 1024);
        assert_eq!(g.offset_bits(), 4);
        assert_eq!(g.index_bits(), 10);
        assert_eq!(g.bank_bits(), 2);
        assert_eq!(g.tag_bits(), 18);
        assert_eq!(g.tag_entry_bits(), 19);
    }

    #[test]
    fn split_and_recombine_roundtrip() {
        let g = CacheGeometry::direct_mapped(8 * 1024, 32, 8).unwrap();
        for set in 0..g.sets() {
            let bank = g.bank_of_set(set);
            let slot = g.slot_in_bank(set);
            assert_eq!(g.set_from_bank_slot(bank, slot), set);
            assert!(bank < g.banks());
            assert!(slot < g.sets_per_bank());
        }
    }

    #[test]
    fn set_of_wraps_modulo_cache() {
        let g = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
        // Two addresses one cache-period apart share a set but not a tag.
        let a = 0x1230;
        let b = a + 16 * 1024;
        assert_eq!(g.set_of(a), g.set_of(b));
        assert_ne!(g.tag_of(a), g.tag_of(b));
    }

    #[test]
    fn set_associative_geometry() {
        let g = CacheGeometry::new(16 * 1024, 16, 4, 4).unwrap();
        assert_eq!(g.sets(), 256);
        assert_eq!(g.sets_per_bank(), 64);
        assert_eq!(g.index_bits(), 8);
        assert_eq!(g.tag_bits(), 20);
    }

    #[test]
    fn rejects_non_power_of_two_and_oversplit() {
        assert!(CacheGeometry::direct_mapped(3000, 16, 4).is_err());
        assert!(CacheGeometry::direct_mapped(16 * 1024, 24, 4).is_err());
        assert!(CacheGeometry::direct_mapped(16 * 1024, 16, 3).is_err());
        assert!(CacheGeometry::direct_mapped(64, 16, 8).is_err());
        assert!(CacheGeometry::new(16 * 1024, 16, 3, 4).is_err());
    }

    #[test]
    fn bank_array_bits_match_share_of_cache() {
        let g = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
        let bank = g.bank_array();
        let mono = g.monolithic_array();
        assert_eq!(bank.data_bits() * 4, mono.data_bits());
        assert_eq!(bank.tag_bits() * 4, mono.tag_bits());
        assert_eq!(mono.data_bits(), 16 * 1024 * 8);
    }

    #[test]
    fn paper_example_1_mapping() {
        // N = 256 lines, M = 4 banks, 64 lines per bank; index 70.
        let g = CacheGeometry::direct_mapped(256 * 16, 16, 4).unwrap();
        let set = 70u64;
        assert_eq!(g.bank_of_set(set), 1);
        assert_eq!(g.slot_in_bank(set), 6);
    }
}
