//! The open, string-keyed replacement-policy registry.
//!
//! The paper's reference cache is direct-mapped, where replacement is
//! vacuous; opening the associativity axis makes the victim choice a
//! real policy. This module mirrors the indexing-policy registry idiom
//! of the core crate (`PolicyRegistry`): a [`ReplacementPolicy`] trait,
//! a [`ReplacementRegistry`] keyed by stable lowercase names, two
//! built-ins (`lru`, `mru`), and a closure-based registration hook so
//! user code can study custom policies without forking the simulator.
//!
//! The [`CacheArray`](crate::CacheArray) keeps one invariant to itself:
//! an invalid way is always filled before any valid way is evicted.
//! Policies only ever choose among *full* sets, so they see one stamp
//! per way and nothing else — enough for recency-order policies, and a
//! deliberate bottleneck that keeps replay byte-deterministic.

use crate::error::SimError;
use std::collections::BTreeMap;
use std::sync::Arc;

/// The default replacement policy name ([`ReplacementRegistry`] key).
pub const DEFAULT_REPLACEMENT: &str = "lru";

/// A victim-selection policy for full set-associative sets.
///
/// `stamps[i]` is the last-touch clock of way `i`; stamps within a set
/// are unique (the array's clock strictly increases per access), so a
/// policy that orders by stamp is total. Implementations must be pure
/// functions of `stamps` — replay determinism depends on it.
pub trait ReplacementPolicy: Send + Sync {
    /// The registry key (stable, lowercase, kebab-case by convention).
    fn name(&self) -> &str;

    /// One-line human-readable description for listings.
    fn description(&self) -> &str {
        ""
    }

    /// Chooses the victim way among a full set. The return value is
    /// clamped by the caller to `stamps.len() - 1`, so an out-of-range
    /// index cannot corrupt the array (it just picks the last way).
    fn victim(&self, stamps: &[u64]) -> usize;
}

/// Index of the minimum stamp (first on ties) — the LRU way.
fn min_stamp_index(stamps: &[u64]) -> usize {
    stamps
        .iter()
        .enumerate()
        .min_by_key(|&(_, s)| *s)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Index of the maximum stamp (first on ties) — the MRU way.
fn max_stamp_index(stamps: &[u64]) -> usize {
    stamps
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i)
        .unwrap_or(0)
}

struct FnReplacement<F> {
    name: String,
    description: String,
    victim: F,
}

impl<F> ReplacementPolicy for FnReplacement<F>
where
    F: Fn(&[u64]) -> usize + Send + Sync,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn description(&self) -> &str {
        &self.description
    }

    fn victim(&self, stamps: &[u64]) -> usize {
        (self.victim)(stamps)
    }
}

/// The string-keyed replacement-policy registry.
///
/// Keys are ordered (a `BTreeMap`), so listings and expanded grids are
/// deterministic regardless of registration order.
#[derive(Clone, Default)]
pub struct ReplacementRegistry {
    entries: BTreeMap<String, Arc<dyn ReplacementPolicy>>,
}

impl std::fmt::Debug for ReplacementRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplacementRegistry")
            .field("policies", &self.names())
            .finish()
    }
}

impl ReplacementRegistry {
    /// An empty registry (no policies at all).
    pub fn empty() -> Self {
        Self::default()
    }

    /// A shared, immutable instance of [`ReplacementRegistry::builtin`]
    /// for hot paths that would otherwise rebuild the map per call.
    pub fn global() -> &'static ReplacementRegistry {
        static GLOBAL: std::sync::OnceLock<ReplacementRegistry> = std::sync::OnceLock::new();
        GLOBAL.get_or_init(ReplacementRegistry::builtin)
    }

    /// The registry with the two built-in policies: `lru` (the default,
    /// and the exact victim order direct-mapped history was produced
    /// under) and `mru` (an openness proof with visibly different
    /// conflict behaviour on looping working sets).
    pub fn builtin() -> Self {
        let mut r = Self::empty();
        r.register_fn(
            "lru",
            "evict the least-recently-used way (the classic default)",
            min_stamp_index,
        )
        .expect("fresh registry");
        r.register_fn(
            "mru",
            "evict the most-recently-used way (thrash-resistant on loops)",
            max_stamp_index,
        )
        .expect("fresh registry");
        r
    }

    /// Registers a policy object. Fails if the name is already taken.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateReplacement`] on a name collision.
    pub fn register(&mut self, policy: Arc<dyn ReplacementPolicy>) -> Result<(), SimError> {
        let name = policy.name().to_string();
        if self.entries.contains_key(&name) {
            return Err(SimError::DuplicateReplacement { name });
        }
        self.entries.insert(name, policy);
        Ok(())
    }

    /// Registers a policy from a closure — the one-liner path for user
    /// code and examples.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DuplicateReplacement`] on a name collision.
    pub fn register_fn<F>(
        &mut self,
        name: &str,
        description: &str,
        victim: F,
    ) -> Result<(), SimError>
    where
        F: Fn(&[u64]) -> usize + Send + Sync + 'static,
    {
        self.register(Arc::new(FnReplacement {
            name: name.to_string(),
            description: description.to_string(),
            victim,
        }))
    }

    /// Looks up a policy by name.
    pub fn get(&self, name: &str) -> Option<&Arc<dyn ReplacementPolicy>> {
        self.entries.get(name)
    }

    /// Resolves a named policy to a shareable handle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownReplacement`] for an unregistered
    /// name, listing the known keys.
    pub fn resolve(&self, name: &str) -> Result<Arc<dyn ReplacementPolicy>, SimError> {
        match self.entries.get(name) {
            Some(policy) => Ok(Arc::clone(policy)),
            None => Err(SimError::UnknownReplacement {
                name: name.to_string(),
                known: self.names().join(", "),
            }),
        }
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of registered policies.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, policy)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Arc<dyn ReplacementPolicy>)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_lru_and_mru() {
        let r = ReplacementRegistry::builtin();
        assert_eq!(r.names(), vec!["lru", "mru"]);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert!(r.get("lru").is_some());
    }

    #[test]
    fn lru_and_mru_pick_opposite_ends() {
        let r = ReplacementRegistry::builtin();
        let stamps = [7u64, 3, 9, 5];
        assert_eq!(r.resolve("lru").unwrap().victim(&stamps), 1);
        assert_eq!(r.resolve("mru").unwrap().victim(&stamps), 2);
    }

    #[test]
    fn unknown_replacement_reports_known_names() {
        let e = ReplacementRegistry::builtin()
            .resolve("nope")
            .err()
            .expect("must fail");
        let text = e.to_string();
        assert!(text.contains("nope"), "{text}");
        assert!(text.contains("lru"), "{text}");
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let mut r = ReplacementRegistry::builtin();
        let e = r.register_fn("lru", "clash", min_stamp_index).unwrap_err();
        assert!(matches!(e, SimError::DuplicateReplacement { .. }));
    }

    #[test]
    fn custom_registration_resolves_by_name() {
        let mut r = ReplacementRegistry::empty();
        // A "pin way 0" policy: always evict the first way.
        r.register_fn("pin-zero", "always evict way 0", |_| 0)
            .unwrap();
        assert_eq!(r.resolve("pin-zero").unwrap().victim(&[1, 2, 3]), 0);
        assert!(r.resolve("lru").is_err(), "empty registry has no builtins");
    }
}
