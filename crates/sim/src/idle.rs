//! Idle-interval tracking and the paper's *useful idleness* metric.
//!
//! "We define a compact metric to measure the energy saving potential,
//! i.e., the useful idleness of a block. This is defined as the percentage
//! of idle intervals of a block that are longer than its breakeven time."
//! (§III-A2, time-weighted as in Table I.)

/// Number of power-of-two histogram buckets (intervals up to 2³¹ cycles).
const BUCKETS: usize = 32;

/// Aggregated idle-interval statistics for one bank.
#[derive(Debug, Clone, PartialEq)]
pub struct IdleStats {
    /// Total cycles spent idle (in any interval).
    pub idle_cycles: u64,
    /// Cycles spent in intervals strictly longer than the breakeven time.
    pub long_idle_cycles: u64,
    /// Number of completed idle intervals.
    pub intervals: u64,
    /// Number of completed intervals longer than the breakeven time.
    pub long_intervals: u64,
    /// Histogram of interval lengths by floor(log2(len)).
    pub histogram: Vec<u64>,
}

impl IdleStats {
    fn new() -> Self {
        Self {
            idle_cycles: 0,
            long_idle_cycles: 0,
            intervals: 0,
            long_intervals: 0,
            histogram: vec![0; BUCKETS],
        }
    }

    /// Longest completed interval bucket (log2), if any interval completed.
    pub fn max_bucket(&self) -> Option<usize> {
        self.histogram.iter().rposition(|&c| c > 0)
    }
}

/// Tracks per-bank idle intervals over a simulation.
///
/// An *idle interval* of a bank is a maximal run of cycles in which the
/// bank is not accessed. Intervals longer than the breakeven time are
/// "useful": the Block Control can profitably sleep the bank through them.
///
/// # Examples
///
/// ```
/// use cache_sim::IdleTracker;
///
/// let mut t = IdleTracker::new(2, 4); // 2 banks, breakeven 4
/// t.record(Some(0)); // cycle 0: bank 0 accessed, bank 1 idle
/// for _ in 0..9 { t.record(Some(0)); }
/// t.record(Some(1)); // bank 1's 10-cycle idle interval closes
/// let stats = t.finish();
/// assert_eq!(stats[1].intervals, 1);
/// assert_eq!(stats[1].long_intervals, 1);
/// assert_eq!(stats[1].idle_cycles, 10);
/// ```
#[derive(Debug, Clone)]
pub struct IdleTracker {
    breakeven: u32,
    /// Length of the currently open idle run per bank.
    open_run: Vec<u64>,
    stats: Vec<IdleStats>,
    cycles: u64,
}

impl IdleTracker {
    /// Creates a tracker for `banks` banks with the given breakeven time.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn new(banks: u32, breakeven: u32) -> Self {
        assert!(banks > 0, "at least one bank");
        Self {
            breakeven,
            open_run: vec![0; banks as usize],
            stats: (0..banks).map(|_| IdleStats::new()).collect(),
            cycles: 0,
        }
    }

    /// Total cycles observed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Records one cycle in which `accessed` (if any) is the accessed bank.
    pub fn record(&mut self, accessed: Option<u32>) {
        self.cycles += 1;
        for b in 0..self.open_run.len() {
            if accessed == Some(b as u32) {
                let run = self.open_run[b];
                if run > 0 {
                    Self::close(&mut self.stats[b], run, self.breakeven);
                    self.open_run[b] = 0;
                }
            } else {
                self.open_run[b] += 1;
            }
        }
    }

    fn close(stats: &mut IdleStats, run: u64, breakeven: u32) {
        stats.intervals += 1;
        stats.idle_cycles += run;
        if run > breakeven as u64 {
            stats.long_intervals += 1;
            stats.long_idle_cycles += run;
        }
        let bucket = (63 - run.leading_zeros()) as usize;
        stats.histogram[bucket.min(BUCKETS - 1)] += 1;
    }

    /// Batched equivalent of calling [`IdleTracker::record`] once per
    /// element of `accessed` (one accessed bank per cycle).
    ///
    /// Intervals only close on accesses, so the tracker needs no
    /// per-cycle bank sweep at all: it keeps a virtual last-access
    /// timestamp per bank and closes the interval of the accessed bank
    /// in `O(1)`. Work is `O(accesses + banks)` per call and the
    /// tracker state is settled to exactly what the per-cycle path
    /// would produce.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if an accessed bank index is out of
    /// range.
    pub fn record_batch(&mut self, accessed: &[u32]) {
        let banks = self.open_run.len();
        let c0 = self.cycles;
        let mut last: Vec<u64> = (0..banks).map(|b| c0 - self.open_run[b]).collect();
        for (i, &bank) in accessed.iter().enumerate() {
            debug_assert!((bank as usize) < banks, "bank {bank} out of range");
            let c = c0 + i as u64 + 1;
            let bi = bank as usize;
            let run = c - 1 - last[bi];
            if run > 0 {
                Self::close(&mut self.stats[bi], run, self.breakeven);
            }
            last[bi] = c;
        }
        let cn = c0 + accessed.len() as u64;
        self.cycles = cn;
        for (open, &l) in self.open_run.iter_mut().zip(&last) {
            *open = cn - l;
        }
    }

    /// Closes all open intervals and returns the per-bank statistics.
    pub fn finish(mut self) -> Vec<IdleStats> {
        for b in 0..self.open_run.len() {
            let run = self.open_run[b];
            if run > 0 {
                Self::close(&mut self.stats[b], run, self.breakeven);
            }
        }
        self.stats
    }

    /// The useful idleness of `bank` so far: the time-weighted fraction of
    /// cycles in completed idle intervals longer than the breakeven time.
    pub fn useful_idleness(&self, bank: u32) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.stats[bank as usize].long_idle_cycles as f64 / self.cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_bookkeeping_is_exact() {
        let mut t = IdleTracker::new(1, 3);
        // Pattern: A..A....A (idle runs of 2 and 4)
        t.record(Some(0));
        t.record(None);
        t.record(None);
        t.record(Some(0));
        for _ in 0..4 {
            t.record(None);
        }
        t.record(Some(0));
        let s = t.finish();
        assert_eq!(s[0].intervals, 2);
        assert_eq!(s[0].idle_cycles, 6);
        assert_eq!(s[0].long_intervals, 1, "only the 4-run beats breakeven 3");
        assert_eq!(s[0].long_idle_cycles, 4);
    }

    #[test]
    fn open_interval_closed_by_finish() {
        let mut t = IdleTracker::new(2, 1);
        t.record(Some(0));
        t.record(Some(0));
        t.record(Some(0));
        let s = t.finish();
        assert_eq!(s[1].intervals, 1);
        assert_eq!(s[1].idle_cycles, 3);
    }

    #[test]
    fn idle_plus_busy_equals_total() {
        let mut t = IdleTracker::new(4, 8);
        let mut touches = [0u64; 4];
        let mut x = 12345u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let b = ((x >> 33) % 4) as u32;
            touches[b as usize] += 1;
            t.record(Some(b));
        }
        let cycles = t.cycles();
        for (b, s) in t.finish().iter().enumerate() {
            assert_eq!(
                s.idle_cycles + touches[b],
                cycles,
                "bank {b}: idle + busy must equal total"
            );
        }
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut t = IdleTracker::new(1, 1);
        t.record(Some(0));
        for _ in 0..5 {
            t.record(None); // run of 5 -> bucket 2
        }
        t.record(Some(0));
        let s = t.finish();
        assert_eq!(s[0].histogram[2], 1);
        assert_eq!(s[0].max_bucket(), Some(2));
    }

    #[test]
    fn boundary_interval_equal_to_breakeven_is_not_long() {
        let mut t = IdleTracker::new(1, 4);
        t.record(Some(0));
        for _ in 0..4 {
            t.record(None);
        }
        t.record(Some(0));
        let s = t.finish();
        assert_eq!(s[0].long_intervals, 0, "len == breakeven is not 'longer'");
    }

    #[test]
    fn record_batch_matches_per_cycle() {
        let mut x = 0xdead_beef_1234u64;
        let accesses: Vec<u32> = (0..6000)
            .map(|_| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((x >> 40) % 4) as u32
            })
            .collect();
        let mut reference = IdleTracker::new(4, 9);
        for &b in &accesses {
            reference.record(Some(b));
        }
        let mut batched = IdleTracker::new(4, 9);
        for chunk in accesses.chunks(113) {
            batched.record_batch(chunk);
        }
        assert_eq!(batched.cycles, reference.cycles);
        assert_eq!(batched.open_run, reference.open_run);
        assert_eq!(batched.finish(), reference.finish());
    }

    #[test]
    fn useful_idleness_mid_run() {
        let mut t = IdleTracker::new(2, 2);
        for _ in 0..10 {
            t.record(Some(0));
        }
        // Bank 1 has an *open* 10-cycle run: not yet counted.
        assert_eq!(t.useful_idleness(1), 0.0);
        t.record(Some(1));
        assert!(t.useful_idleness(1) > 0.8);
    }
}
