//! Trace-driven multi-banked cache simulator.
//!
//! This crate is the reproduction's stand-in for the "in-house cache
//! simulator" of the DATE 2011 paper (§IV-A), built to expose exactly the
//! statistics its evaluation consumes:
//!
//! * hit/miss behaviour of a direct-mapped or set-associative cache
//!   ([`cache`]),
//! * per-bank **idle-interval statistics** and *useful idleness* — the
//!   fraction of time spent in idle intervals longer than the breakeven
//!   time ([`idle`]),
//! * the bank power-state machine with saturating idle counters, drowsy
//!   entry after the breakeven time, and wake-up penalties ([`bank`]),
//! * an energy ledger fed by the [`sram-power`](sram_power) models
//!   ([`run`]), and
//! * a [`mapping::BankMapping`] hook through which the core
//!   crate injects the paper's time-varying bank indexing.
//!
//! # Quick start
//!
//! ```
//! use cache_sim::{Access, CacheGeometry, IdentityMapping, SimConfig, Simulator};
//!
//! # fn main() -> Result<(), cache_sim::SimError> {
//! let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4)?;
//! let config = SimConfig::new(geom)?;
//! let mut sim = Simulator::new(config, Box::new(IdentityMapping))?;
//! // A little loop over one bank's worth of addresses:
//! for i in 0..10_000u64 {
//!     sim.step(Access::read((i % 256) * 16));
//! }
//! let outcome = sim.finish();
//! assert_eq!(outcome.accesses, 10_000);
//! // Three of the four banks were never touched after warm-up.
//! assert!(outcome.avg_useful_idleness() > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod bank;
pub mod cache;
pub mod error;
pub mod geometry;
pub mod hierarchy;
pub mod idle;
pub mod mapping;
pub mod replacement;
pub mod run;
pub mod stats;

pub use bank::{BankPower, BankState};
pub use cache::{AccessKind, AccessResult, CacheArray};
pub use error::SimError;
pub use geometry::CacheGeometry;
pub use hierarchy::{CacheHierarchy, HierarchyOutcome};
pub use idle::{IdleStats, IdleTracker};
pub use mapping::{is_bijective, BankMapping, FnMapping, IdentityMapping};
pub use replacement::{ReplacementPolicy, ReplacementRegistry, DEFAULT_REPLACEMENT};
pub use run::{Access, SimConfig, Simulator};
pub use stats::{BankStats, SimOutcome};
