//! Error type for the cache simulator crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the cache simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A geometry dimension was invalid (zero, not a power of two, or
    /// inconsistent with the other dimensions).
    InvalidGeometry {
        /// Name of the offending dimension.
        name: &'static str,
        /// The rejected value.
        value: u64,
        /// Human-readable description of the accepted range.
        expected: &'static str,
    },
    /// A configuration parameter was invalid.
    InvalidConfig {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable description of the problem.
        reason: &'static str,
    },
    /// A replacement-policy name was already registered.
    DuplicateReplacement {
        /// The colliding registry key.
        name: String,
    },
    /// A replacement-policy name was not found in the registry.
    UnknownReplacement {
        /// The unresolved registry key.
        name: String,
        /// Comma-separated list of registered keys.
        known: String,
    },
    /// An underlying power-model error.
    Power(sram_power::PowerError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidGeometry {
                name,
                value,
                expected,
            } => write!(
                f,
                "geometry `{name}` = {value} is invalid (expected {expected})"
            ),
            SimError::InvalidConfig { name, reason } => {
                write!(f, "configuration `{name}` is invalid: {reason}")
            }
            SimError::DuplicateReplacement { name } => {
                write!(f, "replacement policy `{name}` is already registered")
            }
            SimError::UnknownReplacement { name, known } => {
                write!(
                    f,
                    "unknown replacement policy `{name}` (registered: {known})"
                )
            }
            SimError::Power(e) => write!(f, "power model error: {e}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::Power(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sram_power::PowerError> for SimError {
    fn from(e: sram_power::PowerError) -> Self {
        SimError::Power(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_errors_chain_as_source() {
        let e = SimError::from(sram_power::PowerError::InvalidGeometry {
            name: "depth",
            value: 0,
            expected: "positive",
        });
        assert!(e.source().is_some());
        assert!(e.to_string().contains("power model"));
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<SimError>();
    }
}
