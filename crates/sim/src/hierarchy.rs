//! Two-level cache hierarchy: the L2 access stream *is* the L1 miss
//! stream.
//!
//! The paper's aging argument rests on bank idleness, which it measures
//! on a single cache level. A hierarchy makes the mechanism compose:
//! every L1 hit is, by construction, an idle cycle for the L2, so L2
//! idleness — and therefore drowsy-mode aging recovery — is *induced*
//! by L1 filtering rather than assumed by a workload model. This module
//! pins that identity structurally: [`CacheHierarchy::step`] forwards
//! an access to the L2 exactly when the L1 missed, and advances the L2
//! by one [`idle_cycle`](Simulator::idle_cycle) otherwise, so
//! `l2.accesses == l1.misses` and `l2.cycles == l1.cycles` hold at
//! [`finish`](CacheHierarchy::finish) time for every trace.
//!
//! Both levels are full [`Simulator`]s — each carries its own geometry,
//! bank mapping, power-state machine, idle tracker and energy ledger —
//! so the per-level outcomes feed the aging model independently.
//!
//! The batched path ([`CacheHierarchy::step_batch`]) runs the L1 on the
//! batched hot path and replays the recorded per-position hit/miss
//! flags into the L2 in batch order. Because the L1 is independent of
//! the L2 and the L2 sees a position-identical access/idle sequence,
//! the composition is **bitwise identical** to the scalar one (the
//! `batched_equivalence` integration tests pin this).

use crate::error::SimError;
use crate::run::{Access, Simulator};
use crate::stats::SimOutcome;

/// A two-level cache: an L1 filtering the trace and an L2 seeing only
/// the L1 misses.
///
/// # Examples
///
/// ```
/// use cache_sim::{Access, CacheGeometry, CacheHierarchy, IdentityMapping, SimConfig, Simulator};
///
/// # fn main() -> Result<(), cache_sim::SimError> {
/// let l1 = CacheGeometry::direct_mapped(4 * 1024, 16, 4)?;
/// let l2 = CacheGeometry::new(32 * 1024, 16, 4, 4)?;
/// let mut hier = CacheHierarchy::new(
///     Simulator::new(SimConfig::new(l1)?, Box::new(IdentityMapping))?,
///     Simulator::new(SimConfig::new(l2)?, Box::new(IdentityMapping))?,
/// )?;
/// for i in 0..50_000u64 {
///     hier.step(Access::read((i % 512) * 16));
/// }
/// let out = hier.finish();
/// // The L2 stream is exactly the L1 miss stream...
/// assert_eq!(out.l2.accesses, out.l1.misses);
/// assert_eq!(out.l2.cycles, out.l1.cycles);
/// // ...so a well-filtered L2 is mostly asleep.
/// assert!(out.l2.avg_sleep_fraction() > out.l1.avg_sleep_fraction());
/// # Ok(())
/// # }
/// ```
pub struct CacheHierarchy {
    l1: Simulator,
    l2: Simulator,
    /// Scratch per-position miss flags reused across `step_batch` calls.
    miss_flags: Vec<bool>,
}

impl std::fmt::Debug for CacheHierarchy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheHierarchy")
            .field("l1", &self.l1)
            .field("l2", &self.l2)
            .finish()
    }
}

/// Per-level outcomes of a [`CacheHierarchy`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct HierarchyOutcome {
    /// The L1's outcome over the raw trace.
    pub l1: SimOutcome,
    /// The L2's outcome over the induced (L1-miss) stream.
    pub l2: SimOutcome,
}

impl HierarchyOutcome {
    /// Checks the structural invariants of the composition on top of
    /// each level's own [`SimOutcome::validate`]: the L2 saw exactly
    /// the L1 misses, over exactly as many cycles.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        self.l1.validate().map_err(|e| format!("L1: {e}"))?;
        self.l2.validate().map_err(|e| format!("L2: {e}"))?;
        if self.l2.accesses != self.l1.misses {
            return Err(format!(
                "L2 accesses ({}) != L1 misses ({})",
                self.l2.accesses, self.l1.misses
            ));
        }
        if self.l2.cycles != self.l1.cycles {
            return Err(format!(
                "L2 cycles ({}) != L1 cycles ({})",
                self.l2.cycles, self.l1.cycles
            ));
        }
        Ok(())
    }
}

impl CacheHierarchy {
    /// Composes two simulators into an L1 → L2 hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidGeometry`] if the L2 is smaller than
    /// the L1 (an "L2" that cannot hold the L1's working set inverts
    /// the filtering premise).
    pub fn new(l1: Simulator, l2: Simulator) -> Result<Self, SimError> {
        let l1_bytes = l1.config().geometry().size_bytes();
        let l2_bytes = l2.config().geometry().size_bytes();
        if l2_bytes < l1_bytes {
            return Err(SimError::InvalidGeometry {
                name: "l2_size_bytes",
                value: l2_bytes,
                expected: "an L2 at least as large as the L1",
            });
        }
        Ok(Self {
            l1,
            l2,
            miss_flags: Vec::new(),
        })
    }

    /// The L1 simulator.
    pub fn l1(&self) -> &Simulator {
        &self.l1
    }

    /// The L2 simulator.
    pub fn l2(&self) -> &Simulator {
        &self.l2
    }

    /// Executes one access (one cycle on both levels): the L1 serves
    /// it, and the L2 either serves the resulting miss or idles.
    /// Returns whether the L1 hit.
    pub fn step(&mut self, access: Access) -> bool {
        let result = self.l1.step(access);
        if result.hit {
            self.l2.idle_cycle();
        } else {
            self.l2.step(access);
        }
        result.hit
    }

    /// Advances one cycle with no access on either level (a processor
    /// stall). Leakage accrues and idle counters advance on both.
    pub fn idle_cycle(&mut self) {
        self.l1.idle_cycle();
        self.l2.idle_cycle();
    }

    /// Executes a batch of accesses — the hot path. The L1 runs its
    /// batched pipeline; the recorded per-position miss flags then
    /// drive the L2 through the identical access/idle sequence the
    /// scalar composition would produce, so the result is bitwise
    /// identical to calling [`CacheHierarchy::step`] per element.
    pub fn step_batch(&mut self, batch: &[Access]) {
        let Self { l1, l2, miss_flags } = self;
        miss_flags.clear();
        miss_flags.resize(batch.len(), false);
        l1.step_batch_map(batch, |i, hit| {
            if let Some(flag) = miss_flags.get_mut(i) {
                *flag = !hit;
            }
        });
        for (access, &miss) in batch.iter().zip(miss_flags.iter()) {
            if miss {
                l2.step(*access);
            } else {
                l2.idle_cycle();
            }
        }
    }

    /// Applies one dynamic-indexing update to **both** levels: each
    /// level's mapping advances and its cache flushes (the paper ties
    /// the two together, §III-A3). The L1 flush means previously
    /// filtered lines miss again and refill through the L2, exactly as
    /// hardware would.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if either level's mapping
    /// stops being a bijection (a buggy custom policy).
    pub fn update_mapping(&mut self) -> Result<(), SimError> {
        self.l1.update_mapping()?;
        self.l2.update_mapping()
    }

    /// Finishes both levels and returns their outcomes.
    pub fn finish(self) -> HierarchyOutcome {
        HierarchyOutcome {
            l1: self.l1.finish(),
            l2: self.l2.finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::CacheGeometry;
    use crate::mapping::IdentityMapping;
    use crate::run::SimConfig;

    fn level(size_bytes: u64, ways: u32, banks: u32) -> Simulator {
        let geom = CacheGeometry::new(size_bytes, 16, ways, banks).unwrap();
        Simulator::new(SimConfig::new(geom).unwrap(), Box::new(IdentityMapping)).unwrap()
    }

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(level(4 * 1024, 1, 4), level(32 * 1024, 4, 4)).unwrap()
    }

    #[test]
    fn l2_stream_is_exactly_the_l1_miss_stream() {
        let mut h = hierarchy();
        let mut x = 0xabcd_ef01_u64;
        for _ in 0..80_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            h.step(Access::read(x % (64 * 1024)));
            if x.is_multiple_of(7) {
                h.idle_cycle();
            }
        }
        let out = h.finish();
        out.validate().unwrap();
        assert!(out.l1.misses > 0, "trace must actually miss");
    }

    #[test]
    fn l2_size_must_cover_l1() {
        let err = CacheHierarchy::new(level(32 * 1024, 1, 4), level(4 * 1024, 1, 4));
        assert!(matches!(
            err,
            Err(SimError::InvalidGeometry {
                name: "l2_size_bytes",
                ..
            })
        ));
    }

    #[test]
    fn filtering_induces_l2_idleness() {
        // A loop that fits the L1 after warm-up: the L2 sees only cold
        // misses and then sleeps for the rest of the run.
        let mut h = hierarchy();
        for i in 0..100_000u64 {
            h.step(Access::read((i % 128) * 16));
        }
        let out = h.finish();
        out.validate().unwrap();
        assert!(out.l1.miss_rate() < 0.01);
        assert!(
            out.l2.avg_sleep_fraction() > 0.9,
            "filtered L2 must sleep: {}",
            out.l2.avg_sleep_fraction()
        );
        assert!(out.l2.avg_sleep_fraction() > out.l1.avg_sleep_fraction());
    }

    #[test]
    fn update_flushes_both_levels() {
        let mut h = hierarchy();
        for i in 0..1000u64 {
            h.step(Access::read(i * 16));
        }
        h.update_mapping().unwrap();
        let out = h.finish();
        assert_eq!(out.l1.updates, 1);
        assert_eq!(out.l2.updates, 1);
        assert_eq!(out.l1.flushes, 1);
        assert_eq!(out.l2.flushes, 1);
    }

    #[test]
    fn batched_composition_is_bitwise_identical_to_scalar() {
        let mut x = 0x5eed_cafe_u64;
        let accesses: Vec<Access> = (0..60_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = x % (96 * 1024);
                if x.is_multiple_of(3) {
                    Access::write(addr)
                } else {
                    Access::read(addr)
                }
            })
            .collect();
        let mut scalar = hierarchy();
        for &a in &accesses {
            scalar.step(a);
        }
        let mut batched = hierarchy();
        let mut rest = &accesses[..];
        let sizes = [1usize, 7, 256, 4096, 33];
        let mut si = 0;
        while !rest.is_empty() {
            let n = sizes[si % sizes.len()].min(rest.len());
            si += 1;
            if si % 5 == 0 {
                batched.step(rest[0]);
                rest = &rest[1..];
                continue;
            }
            batched.step_batch(&rest[..n]);
            rest = &rest[n..];
        }
        let (a, b) = (scalar.finish(), batched.finish());
        assert_eq!(a, b, "hierarchy batched path must be bitwise identical");
        for (x, y) in [(&a.l1, &b.l1), (&a.l2, &b.l2)] {
            assert_eq!(x.energy.dynamic_fj.to_bits(), y.energy.dynamic_fj.to_bits());
            assert_eq!(x.energy.leakage_fj.to_bits(), y.energy.leakage_fj.to_bits());
            assert_eq!(x.energy.wake_fj.to_bits(), y.energy.wake_fj.to_bits());
            assert_eq!(
                x.energy.overhead_fj.to_bits(),
                y.energy.overhead_fj.to_bits()
            );
        }
    }
}
