//! The simulation driver: trace in, [`SimOutcome`] out.

use crate::bank::{BankPower, BankState};
use crate::cache::{AccessKind, AccessResult, CacheArray};
use crate::error::SimError;
use crate::geometry::CacheGeometry;
use crate::idle::IdleTracker;
use crate::mapping::{is_bijective, BankMapping};
use crate::replacement::ReplacementPolicy;
use crate::stats::{BankStats, SimOutcome};
use sram_power::{BreakevenAnalysis, EnergyLedger, EnergyModel, PartitionOverhead, Technology};
use std::sync::Arc;

/// One trace element: an address plus read/write kind, one per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Read or write.
    pub kind: AccessKind,
}

impl Access {
    /// A read access.
    pub fn read(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::Read,
        }
    }

    /// A write access.
    pub fn write(addr: u64) -> Self {
        Self {
            addr,
            kind: AccessKind::Write,
        }
    }
}

/// Everything a [`Simulator`] needs besides the mapping policy.
#[derive(Clone)]
pub struct SimConfig {
    geometry: CacheGeometry,
    energy: EnergyModel,
    overhead: PartitionOverhead,
    breakeven: BreakevenAnalysis,
    replacement: Option<Arc<dyn ReplacementPolicy>>,
}

impl std::fmt::Debug for SimConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimConfig")
            .field("geometry", &self.geometry)
            .field("energy", &self.energy)
            .field("overhead", &self.overhead)
            .field("breakeven", &self.breakeven)
            .field(
                "replacement",
                &self.replacement.as_deref().map_or("lru", |p| p.name()),
            )
            .finish()
    }
}

impl SimConfig {
    /// Builds a configuration with the default 45 nm technology; the
    /// breakeven time is derived from the bank's wake energy and leakage.
    ///
    /// # Errors
    ///
    /// Propagates power-model errors (e.g. more banks than the overhead
    /// characterization supports).
    pub fn new(geometry: CacheGeometry) -> Result<Self, SimError> {
        Self::with_technology(geometry, Technology::default_45nm())
    }

    /// Builds a configuration with an explicit technology.
    ///
    /// # Errors
    ///
    /// Propagates power-model errors.
    pub fn with_technology(geometry: CacheGeometry, tech: Technology) -> Result<Self, SimError> {
        let energy = EnergyModel::new(tech)?;
        let overhead = PartitionOverhead::for_banks(geometry.banks())?;
        let breakeven = BreakevenAnalysis::for_bank(&energy, &geometry.bank_array())?;
        Ok(Self {
            geometry,
            energy,
            overhead,
            breakeven,
            replacement: None,
        })
    }

    /// Overrides the derived breakeven time (for what-if studies).
    #[must_use]
    pub fn with_breakeven(mut self, breakeven: BreakevenAnalysis) -> Self {
        self.breakeven = breakeven;
        self
    }

    /// Selects a victim-selection policy for set-associative geometries
    /// (`None` restores the built-in LRU). Irrelevant when `ways == 1`.
    #[must_use]
    pub fn with_replacement(mut self, policy: Option<Arc<dyn ReplacementPolicy>>) -> Self {
        self.replacement = policy;
        self
    }

    /// The configured replacement policy (`None` = built-in LRU).
    pub fn replacement(&self) -> Option<&Arc<dyn ReplacementPolicy>> {
        self.replacement.as_ref()
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// The energy model in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy
    }

    /// The partitioning overhead characterization.
    pub fn overhead(&self) -> &PartitionOverhead {
        &self.overhead
    }

    /// The breakeven analysis driving the Block Control.
    pub fn breakeven(&self) -> &BreakevenAnalysis {
        &self.breakeven
    }
}

/// Trace-driven simulator for a power-managed, banked cache.
///
/// Drives four coupled models per cycle: the tag array ([`CacheArray`]),
/// the Block Control power-state machine ([`BankPower`]), the idle-interval
/// tracker ([`IdleTracker`]) and the energy ledger.
///
/// # Examples
///
/// ```
/// use cache_sim::{Access, CacheGeometry, IdentityMapping, SimConfig, Simulator};
///
/// # fn main() -> Result<(), cache_sim::SimError> {
/// let geom = CacheGeometry::direct_mapped(8 * 1024, 16, 4)?;
/// let mut sim = Simulator::new(SimConfig::new(geom)?, Box::new(IdentityMapping))?;
/// for i in 0..100_000u64 {
///     sim.step(Access::read((i % 64) * 16)); // hot loop in bank 0
/// }
/// let out = sim.finish();
/// out.validate().map_err(|e| panic!("{e}")).ok();
/// assert!(out.miss_rate() < 0.01);
/// assert!(out.sleep_fraction(3) > 0.9, "untouched banks sleep");
/// # Ok(())
/// # }
/// ```
pub struct Simulator {
    config: SimConfig,
    cache: CacheArray,
    mapping: Box<dyn BankMapping>,
    power: BankPower,
    idle: IdleTracker,
    ledger: EnergyLedger,
    bank_accesses: Vec<u64>,
    hits: u64,
    misses: u64,
    writebacks: u64,
    updates: u64,
    // Scratch buffers reused across step_batch calls.
    phys: Vec<u32>,
    phys_sets: Vec<u64>,
    lut: Vec<u32>,
    leak_lut: Vec<f64>,
    // Pre-computed per-event energies (fJ).
    access_fj: f64,
    access_overhead_fj: f64,
    wake_fj: f64,
    leak_active_fj: f64,
    leak_drowsy_fj: f64,
    leak_overhead_factor: f64,
}

impl std::fmt::Debug for Simulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulator")
            .field("geometry", self.config.geometry())
            .field("mapping", &self.mapping.name())
            .field("cycles", &self.power.cycles())
            .finish_non_exhaustive()
    }
}

impl Simulator {
    /// Creates a simulator with the given configuration and bank mapping.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `mapping` is not a bijection
    /// over the configured bank count.
    pub fn new(config: SimConfig, mapping: Box<dyn BankMapping>) -> Result<Self, SimError> {
        let banks = config.geometry().banks();
        if !is_bijective(mapping.as_ref(), banks) {
            return Err(SimError::InvalidConfig {
                name: "mapping",
                reason: "bank mapping is not a bijection over the bank count",
            });
        }
        let bank_array = config.geometry().bank_array();
        let em = config.energy_model();
        let access_fj = em.access_energy_fj(&bank_array);
        let access_overhead_fj = access_fj * (config.overhead().access_energy_factor() - 1.0);
        let wake_fj = em.wake_energy_fj(&bank_array);
        let leak_active_fj = em.leak_fj_per_cycle_active(&bank_array);
        let leak_drowsy_fj = em.leak_fj_per_cycle_drowsy(&bank_array);
        let leak_overhead_factor = config.overhead().leakage_factor() - 1.0;
        let breakeven = config.breakeven().cycles();
        let cache = match config.replacement() {
            Some(policy) => CacheArray::with_replacement(*config.geometry(), Arc::clone(policy)),
            None => CacheArray::new(*config.geometry()),
        };
        Ok(Self {
            cache,
            power: BankPower::new(banks, breakeven),
            idle: IdleTracker::new(banks, breakeven),
            mapping,
            ledger: EnergyLedger::new(),
            bank_accesses: vec![0; banks as usize],
            hits: 0,
            misses: 0,
            writebacks: 0,
            updates: 0,
            phys: Vec::new(),
            phys_sets: Vec::new(),
            lut: Vec::new(),
            leak_lut: Vec::new(),
            access_fj,
            access_overhead_fj,
            wake_fj,
            leak_active_fj,
            leak_drowsy_fj,
            leak_overhead_factor,
            config,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Cycles simulated so far.
    pub fn cycles(&self) -> u64 {
        self.power.cycles()
    }

    /// Executes one access (one cycle).
    pub fn step(&mut self, access: Access) -> AccessResult {
        let geom = *self.config.geometry();
        let set = geom.set_of(access.addr);
        let logical_bank = geom.bank_of_set(set);
        let physical_bank = self.mapping.map_bank(logical_bank, geom.banks());
        debug_assert!(physical_bank < geom.banks(), "mapping out of range");
        let physical_set = geom.set_from_bank_slot(physical_bank, geom.slot_in_bank(set));

        let result = self
            .cache
            .access(physical_set, geom.tag_of(access.addr), access.kind);
        if result.hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            // The refill writes the fetched line into the array: a second
            // array access. A dirty eviction additionally reads the victim
            // line out for the write-back.
            self.ledger.dynamic_fj += self.access_fj;
            self.ledger.overhead_fj += self.access_overhead_fj;
            if result.writeback {
                self.writebacks += 1;
                self.ledger.dynamic_fj += self.access_fj;
                self.ledger.overhead_fj += self.access_overhead_fj;
            }
        }
        self.bank_accesses[physical_bank as usize] += 1;

        let events = self.power.cycle(Some(physical_bank));
        if events.woke_bank.is_some() {
            self.ledger.wake_fj += self.wake_fj;
        }
        self.idle.record(Some(physical_bank));

        self.ledger.dynamic_fj += self.access_fj;
        self.ledger.overhead_fj += self.access_overhead_fj;
        self.charge_leakage();
        result
    }

    /// Executes a batch of accesses, one cycle each — the hot path.
    ///
    /// Produces **bitwise-identical** state to calling
    /// [`Simulator::step`] once per element (the `batched_equivalence`
    /// integration tests enforce this on every built-in workload), but
    /// amortizes the per-access overheads the scalar path pays:
    ///
    /// * the virtual `map_bank` dispatch collapses to one logical→
    ///   physical bank LUT per batch (the mapping can only change via
    ///   [`Simulator::update_mapping`], never mid-batch);
    /// * the `O(banks)` per-cycle sweeps in [`BankPower`] and
    ///   [`IdleTracker`] become event-driven batch walks
    ///   ([`BankPower::cycle_batch`], [`IdleTracker::record_batch`]);
    /// * per-cycle leakage becomes a table lookup indexed by the live
    ///   active-bank count (same arithmetic, precomputed).
    ///
    /// The two paths are interchangeable: scalar `step` calls may
    /// precede or follow batches on the same simulator.
    pub fn step_batch(&mut self, batch: &[Access]) {
        self.step_batch_map(batch, |_, _| {});
    }

    /// [`Simulator::step_batch`] with a per-access observer: `on_access`
    /// is called once per batch element, in batch order, with the
    /// element's index and whether it hit. This is the hook a cache
    /// *hierarchy* needs — the observer lets the caller reconstruct the
    /// exact miss stream without leaving the batched hot path.
    pub fn step_batch_map(&mut self, batch: &[Access], mut on_access: impl FnMut(usize, bool)) {
        let geom = *self.config.geometry();
        let banks = geom.banks();
        self.lut.clear();
        self.lut
            .extend((0..banks).map(|l| self.mapping.map_bank(l, banks)));
        self.leak_lut.clear();
        for active in 0..=banks {
            let drowsy = banks - active;
            // Exactly charge_leakage's expression, per possible count.
            self.leak_lut
                .push(active as f64 * self.leak_active_fj + drowsy as f64 * self.leak_drowsy_fj);
        }
        self.phys.clear();
        self.phys.reserve(batch.len());
        self.phys_sets.clear();
        self.phys_sets.reserve(batch.len());
        for access in batch {
            let set = geom.set_of(access.addr);
            let physical = self.lut[geom.bank_of_set(set) as usize];
            debug_assert!(physical < banks, "mapping out of range");
            self.phys.push(physical);
            self.phys_sets
                .push(geom.set_from_bank_slot(physical, geom.slot_in_bank(set)));
        }
        self.idle.record_batch(&self.phys);

        let access_fj = self.access_fj;
        let access_overhead_fj = self.access_overhead_fj;
        let wake_fj = self.wake_fj;
        let leak_overhead_factor = self.leak_overhead_factor;
        let Self {
            cache,
            power,
            ledger,
            bank_accesses,
            hits,
            misses,
            writebacks,
            phys,
            phys_sets,
            leak_lut,
            ..
        } = self;
        let phys: &[u32] = phys;
        let phys_sets: &[u64] = phys_sets;
        power.cycle_batch(phys, |i, woke, active| {
            let access = batch[i];
            let physical_bank = phys[i];
            let result = cache.access(phys_sets[i], geom.tag_of(access.addr), access.kind);
            on_access(i, result.hit);
            if result.hit {
                *hits += 1;
            } else {
                *misses += 1;
                ledger.dynamic_fj += access_fj;
                ledger.overhead_fj += access_overhead_fj;
                if result.writeback {
                    *writebacks += 1;
                    ledger.dynamic_fj += access_fj;
                    ledger.overhead_fj += access_overhead_fj;
                }
            }
            bank_accesses[physical_bank as usize] += 1;
            if woke {
                ledger.wake_fj += wake_fj;
            }
            ledger.dynamic_fj += access_fj;
            ledger.overhead_fj += access_overhead_fj;
            let leak = leak_lut[active as usize];
            ledger.leakage_fj += leak;
            ledger.overhead_fj += leak * leak_overhead_factor;
        });
    }

    /// Advances one cycle with no cache access (a processor stall or
    /// non-memory instruction). Leakage still accrues and idle counters
    /// still advance.
    pub fn idle_cycle(&mut self) {
        self.power.cycle(None);
        self.idle.record(None);
        self.charge_leakage();
    }

    fn charge_leakage(&mut self) {
        let banks = self.config.geometry().banks();
        let mut active = 0u32;
        for b in 0..banks {
            if self.power.state(b) == BankState::Active {
                active += 1;
            }
        }
        let drowsy = banks - active;
        let leak = active as f64 * self.leak_active_fj + drowsy as f64 * self.leak_drowsy_fj;
        self.ledger.leakage_fj += leak;
        self.ledger.overhead_fj += leak * self.leak_overhead_factor;
    }

    /// Flushes the cache (e.g. a context switch).
    pub fn flush(&mut self) -> u64 {
        self.cache.flush()
    }

    /// Applies one dynamic-indexing `update`: advances the mapping state
    /// and flushes the cache, as the paper ties the two together
    /// (§III-A3: "we can simply associate the update event to any cache
    /// flush occurring in the system").
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the updated mapping stops
    /// being a bijection (a buggy custom policy).
    pub fn update_mapping(&mut self) -> Result<(), SimError> {
        self.mapping.update();
        if !is_bijective(self.mapping.as_ref(), self.config.geometry().banks()) {
            return Err(SimError::InvalidConfig {
                name: "mapping",
                reason: "bank mapping stopped being a bijection after update",
            });
        }
        self.cache.flush();
        self.updates += 1;
        Ok(())
    }

    /// Finishes the run and produces the outcome, including the monolithic
    /// always-on baseline for the same trace.
    pub fn finish(self) -> SimOutcome {
        let cycles = self.power.cycles();
        let accesses = self.hits + self.misses;
        let geom = self.config.geometry();
        let em = self.config.energy_model();
        let mono = geom.monolithic_array();
        // The monolithic cache sees the same hits/misses (banking with a
        // bijective mapping does not change placement conflicts), so it
        // pays the same refills and write-backs at its own access energy.
        let mono_events = accesses + self.misses + self.writebacks;
        let monolithic_baseline = EnergyLedger {
            dynamic_fj: mono_events as f64 * em.access_energy_fj(&mono),
            leakage_fj: cycles as f64 * em.leak_fj_per_cycle_active(&mono),
            wake_fj: 0.0,
            overhead_fj: 0.0,
        };
        let banks = geom.banks();
        let idle_stats = self.idle.finish();
        let per_bank = (0..banks as usize)
            .zip(idle_stats)
            .map(|(b, idle)| BankStats {
                accesses: self.bank_accesses[b],
                sleep_cycles: self.power.sleep_cycles(b as u32),
                wakes: self.power.wakes(b as u32),
                idle,
            })
            .collect();
        SimOutcome {
            cycles,
            accesses,
            hits: self.hits,
            misses: self.misses,
            flushes: self.cache.flushes(),
            writebacks: self.writebacks,
            updates: self.updates,
            breakeven_cycles: self.config.breakeven().cycles(),
            per_bank,
            energy: self.ledger,
            monolithic_baseline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::IdentityMapping;

    fn sim(size_kb: u64, banks: u32) -> Simulator {
        let geom = CacheGeometry::direct_mapped(size_kb * 1024, 16, banks).unwrap();
        Simulator::new(SimConfig::new(geom).unwrap(), Box::new(IdentityMapping)).unwrap()
    }

    #[test]
    fn invariants_hold_on_random_traffic() {
        let mut s = sim(16, 4);
        let mut x = 0xdeadbeefu64;
        let mut idles = 0u64;
        for _ in 0..100_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            s.step(Access::read(x % (64 * 1024)));
            if x.is_multiple_of(5) {
                s.idle_cycle();
                idles += 1;
            }
        }
        let out = s.finish();
        out.validate().unwrap();
        assert_eq!(out.cycles, 100_000 + idles, "accesses + idle cycles");
        assert_eq!(out.accesses, 100_000);
        assert!(out.miss_rate() > 0.0);
    }

    #[test]
    fn step_batch_is_bitwise_identical_to_step() {
        // Mixed read/write traffic with conflict misses and dirty
        // evictions, alternating banks so wakes and drowses both fire.
        let mut x = 0xfeed_f00d_u64;
        let accesses: Vec<Access> = (0..60_000)
            .map(|i: u64| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let addr = (i / 500) % 2 * 4096 + x % (40 * 1024);
                if x.is_multiple_of(3) {
                    Access::write(addr)
                } else {
                    Access::read(addr)
                }
            })
            .collect();
        let mut scalar = sim(16, 4);
        for &a in &accesses {
            scalar.step(a);
        }
        let mut batched = sim(16, 4);
        // Ragged batch sizes, including size-1 and a scalar interlude,
        // to prove the paths are interchangeable mid-run.
        let mut rest = &accesses[..];
        let sizes = [1usize, 7, 256, 4096, 33];
        let mut si = 0;
        while !rest.is_empty() {
            let n = sizes[si % sizes.len()].min(rest.len());
            si += 1;
            if si % 5 == 0 {
                batched.step(rest[0]);
                rest = &rest[1..];
                continue;
            }
            batched.step_batch(&rest[..n]);
            rest = &rest[n..];
        }
        let (a, b) = (scalar.finish(), batched.finish());
        assert_eq!(a, b, "batched outcome must be bitwise identical");
        assert_eq!(a.energy.dynamic_fj.to_bits(), b.energy.dynamic_fj.to_bits());
        assert_eq!(a.energy.leakage_fj.to_bits(), b.energy.leakage_fj.to_bits());
        assert_eq!(
            a.energy.overhead_fj.to_bits(),
            b.energy.overhead_fj.to_bits()
        );
        assert_eq!(a.energy.wake_fj.to_bits(), b.energy.wake_fj.to_bits());
    }

    #[test]
    fn update_rejects_policy_that_breaks_bijectivity() {
        // Failure injection: a policy that is bijective at t = 0 but
        // collapses after its first update. The simulator must catch it
        // at update time rather than corrupt the cache.
        struct Degrading {
            updates: u32,
        }
        impl BankMapping for Degrading {
            fn map_bank(&self, logical: u32, _banks: u32) -> u32 {
                if self.updates == 0 {
                    logical
                } else {
                    0 // collapses every bank onto bank 0
                }
            }
            fn update(&mut self) {
                self.updates += 1;
            }

            fn name(&self) -> &'static str {
                "degrading"
            }

            // banks parameter unused in the collapse branch on purpose.
        }
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
        let mut s = Simulator::new(
            SimConfig::new(geom).unwrap(),
            Box::new(Degrading { updates: 0 }),
        )
        .unwrap();
        for i in 0..100u64 {
            s.step(Access::read(i * 16));
        }
        let err = s.update_mapping();
        assert!(matches!(err, Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn monolithic_power_managed_cache_still_saves_on_idle_gaps() {
        // banks = 1: no partitioning gain, but the single block can still
        // drowse through long CPU-idle stretches.
        let geom = CacheGeometry::direct_mapped(8 * 1024, 16, 1).unwrap();
        let mut s =
            Simulator::new(SimConfig::new(geom).unwrap(), Box::new(IdentityMapping)).unwrap();
        for i in 0..10_000u64 {
            s.step(Access::read((i % 64) * 16));
            if i.is_multiple_of(100) {
                for _ in 0..200 {
                    s.idle_cycle(); // long CPU stall
                }
            }
        }
        let out = s.finish();
        out.validate().unwrap();
        assert!(
            out.sleep_fraction(0) > 0.3,
            "the block drowses during stalls"
        );
        assert!(out.energy_saving() > 0.0);
        assert!(
            out.energy_saving() < 0.25,
            "without partitioning the saving is leakage-only: {}",
            out.energy_saving()
        );
    }

    #[test]
    fn hot_loop_sleeps_other_banks() {
        let mut s = sim(16, 4);
        for i in 0..50_000u64 {
            s.step(Access::read((i % 128) * 16)); // bank 0 only
        }
        let out = s.finish();
        out.validate().unwrap();
        assert!(out.sleep_fraction(0) < 0.01);
        for b in 1..4 {
            assert!(out.sleep_fraction(b) > 0.99, "bank {b} should sleep");
            assert!(out.useful_idleness(b) > 0.99);
        }
        assert!(out.energy_saving() > 0.0, "saving {}", out.energy_saving());
    }

    #[test]
    fn energy_saving_in_calibrated_range_for_reference_config() {
        // A synthetic trace with ~40 % average idleness at 16 kB / M=4
        // should land near the paper's 44 % Esav. Here: two banks busy,
        // two asleep -> ~50 % idleness -> saving in the 40-55 % range.
        let mut s = sim(16, 4);
        for i in 0..200_000u64 {
            let bank = (i / 1000) % 2; // alternate banks 0 and 1 slowly
            let addr = bank * 4096 + (i % 256) * 16;
            s.step(Access::read(addr));
        }
        let out = s.finish();
        let esav = out.energy_saving();
        assert!(
            (0.30..0.65).contains(&esav),
            "Esav at reference point should be near the paper's 0.44, got {esav}"
        );
    }

    #[test]
    fn update_flushes_and_counts() {
        let mut s = sim(8, 4);
        for i in 0..1000u64 {
            s.step(Access::read(i * 16));
        }
        s.update_mapping().unwrap();
        let out = s.finish();
        assert_eq!(out.updates, 1);
        assert_eq!(out.flushes, 1);
    }

    #[test]
    fn identity_mapping_matches_unbanked_miss_rate() {
        // Partitioning with identity mapping must not change hit/miss
        // behaviour (paper §III: "no degradation of miss rate").
        let geom1 = CacheGeometry::direct_mapped(16 * 1024, 16, 1).unwrap();
        let geom4 = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
        let mut s1 =
            Simulator::new(SimConfig::new(geom1).unwrap(), Box::new(IdentityMapping)).unwrap();
        let mut s4 =
            Simulator::new(SimConfig::new(geom4).unwrap(), Box::new(IdentityMapping)).unwrap();
        let mut x = 777u64;
        for _ in 0..50_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let a = (x >> 20) % (48 * 1024);
            let r1 = s1.step(Access::read(a));
            let r4 = s4.step(Access::read(a));
            assert_eq!(r1.hit, r4.hit, "banking must not alter hits");
        }
        let (o1, o4) = (s1.finish(), s4.finish());
        assert_eq!(o1.misses, o4.misses);
    }

    #[test]
    fn rejects_non_bijective_mapping() {
        struct Collapse;
        impl BankMapping for Collapse {
            fn map_bank(&self, _l: u32, _b: u32) -> u32 {
                0
            }
            fn update(&mut self) {}
        }
        let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
        let r = Simulator::new(SimConfig::new(geom).unwrap(), Box::new(Collapse));
        assert!(matches!(r, Err(SimError::InvalidConfig { .. })));
    }

    #[test]
    fn writes_hit_like_reads() {
        let mut s = sim(8, 2);
        s.step(Access::write(0x100));
        let r = s.step(Access::read(0x100));
        assert!(r.hit);
    }

    #[test]
    fn dirty_evictions_are_counted_and_charged() {
        let geom = CacheGeometry::direct_mapped(1024, 16, 2).unwrap();
        let cfg = SimConfig::new(geom).unwrap();
        let mut dirty = Simulator::new(cfg.clone(), Box::new(IdentityMapping)).unwrap();
        let mut clean = Simulator::new(cfg, Box::new(IdentityMapping)).unwrap();
        // Write a working set, then conflict-evict all of it; the
        // read-only twin evicts the same lines without write-backs.
        for round in 0..4u64 {
            for i in 0..64u64 {
                let addr = i * 16 + round * 1024;
                dirty.step(Access::write(addr));
                clean.step(Access::read(addr));
            }
        }
        let (d, c) = (dirty.finish(), clean.finish());
        d.validate().unwrap();
        assert!(
            d.writebacks > 0,
            "conflict-evicted dirty lines must write back"
        );
        assert_eq!(c.writebacks, 0);
        assert_eq!(d.misses, c.misses, "same placement conflicts");
        assert!(
            d.energy.dynamic_fj > c.energy.dynamic_fj,
            "write-backs must cost dynamic energy"
        );
        assert!(
            d.monolithic_baseline.dynamic_fj > c.monolithic_baseline.dynamic_fj,
            "the monolithic baseline pays the same write-backs"
        );
    }

    #[test]
    fn wake_stall_overhead_is_negligible() {
        // The paper's performance argument: even with phase-heavy traffic
        // waking banks, stalls are a vanishing fraction of cycles.
        let mut s = sim(16, 4);
        for i in 0..100_000u64 {
            // Alternate two banks on 2000-cycle phases.
            let bank = (i / 2000) % 2;
            s.step(Access::read(bank * 4096 + (i % 200) * 16));
        }
        let out = s.finish();
        assert!(out.total_wakes() > 0);
        let overhead = out.wake_stall_overhead(3);
        assert!(
            overhead < 0.01,
            "wake stalls should be well under 1 %: {overhead}"
        );
    }
}
