//! The bank-remapping hook for time-varying (dynamic) indexing.
//!
//! The paper's decoder `D` passes the `n − p` LSBs of the index straight
//! to every bank and transforms only the `p` bank-select MSBs through a
//! function `f()` that changes on each `update` (Fig. 2). This trait is
//! that `f()`: the simulator consults it on every access, and the
//! architectural layer (the `aging-cache` crate) provides the paper's
//! Probing and Scrambling implementations.

/// A (possibly time-varying) bijective remapping of logical banks onto
/// physical banks.
///
/// Implementations must be bijections over `0..banks` at all times —
/// otherwise two logical banks would collide in one physical bank and the
/// cache would corrupt lines. The simulator debug-asserts the codomain.
pub trait BankMapping {
    /// Maps a logical bank id to a physical bank id. Must be a bijection
    /// over `0..banks`.
    fn map_bank(&self, logical: u32, banks: u32) -> u32;

    /// Advances the time-varying state (the paper's `update` signal).
    ///
    /// Called by the simulator's
    /// [`update_mapping`](crate::run::Simulator::update_mapping), which
    /// also flushes the cache — after an update the old placements are
    /// meaningless.
    fn update(&mut self);

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "custom"
    }
}

impl BankMapping for Box<dyn BankMapping> {
    fn map_bank(&self, logical: u32, banks: u32) -> u32 {
        self.as_ref().map_bank(logical, banks)
    }

    fn update(&mut self) {
        self.as_mut().update();
    }

    fn name(&self) -> &str {
        self.as_ref().name()
    }
}

/// A stateless mapping defined by a closure — the shortest path from
/// user code to a registrable policy. The closure receives
/// `(logical, banks)` and must be a bijection over `0..banks`; `update`
/// is a no-op.
pub struct FnMapping<F> {
    f: F,
}

impl<F: Fn(u32, u32) -> u32> FnMapping<F> {
    /// Wraps a `(logical, banks) -> physical` closure.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<F: Fn(u32, u32) -> u32> BankMapping for FnMapping<F> {
    fn map_bank(&self, logical: u32, banks: u32) -> u32 {
        (self.f)(logical, banks)
    }

    fn update(&mut self) {}

    fn name(&self) -> &str {
        "fn"
    }
}

/// The identity mapping: a conventional power-managed partitioned cache
/// with no re-indexing (the paper's `LT0` baseline).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IdentityMapping;

impl BankMapping for IdentityMapping {
    fn map_bank(&self, logical: u32, _banks: u32) -> u32 {
        logical
    }

    fn update(&mut self) {}

    fn name(&self) -> &str {
        "identity"
    }
}

/// Checks that `mapping` is a bijection over `0..banks`; used by tests and
/// debug assertions.
pub fn is_bijective(mapping: &dyn BankMapping, banks: u32) -> bool {
    let mut seen = vec![false; banks as usize];
    for b in 0..banks {
        let m = mapping.map_bank(b, banks);
        if m >= banks || seen[m as usize] {
            return false;
        }
        seen[m as usize] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_bijective_and_stable() {
        let mut m = IdentityMapping;
        assert!(is_bijective(&m, 8));
        m.update();
        assert_eq!(m.map_bank(5, 8), 5);
        assert_eq!(m.name(), "identity");
    }

    #[test]
    fn bijectivity_checker_catches_collisions() {
        struct Collapse;
        impl BankMapping for Collapse {
            fn map_bank(&self, _l: u32, _b: u32) -> u32 {
                0
            }
            fn update(&mut self) {}
        }
        assert!(!is_bijective(&Collapse, 4));
        assert!(is_bijective(&Collapse, 1), "trivially bijective at M=1");
    }

    #[test]
    fn bijectivity_checker_catches_out_of_range() {
        struct OutOfRange;
        impl BankMapping for OutOfRange {
            fn map_bank(&self, l: u32, banks: u32) -> u32 {
                l + banks
            }
            fn update(&mut self) {}
        }
        assert!(!is_bijective(&OutOfRange, 4));
    }
}
