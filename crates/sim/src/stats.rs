//! Simulation outcome statistics.

use crate::idle::IdleStats;
use sram_power::EnergyLedger;

/// Per-bank statistics of one simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct BankStats {
    /// Accesses served by this (physical) bank.
    pub accesses: u64,
    /// Cycles spent in the drowsy state.
    pub sleep_cycles: u64,
    /// Wake-ups paid.
    pub wakes: u64,
    /// Idle-interval statistics.
    pub idle: IdleStats,
}

/// The complete result of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutcome {
    /// Total simulated cycles (accesses plus explicit idle cycles).
    pub cycles: u64,
    /// Total cache accesses.
    pub accesses: u64,
    /// Cache hits.
    pub hits: u64,
    /// Cache misses.
    pub misses: u64,
    /// Cache flushes (including those triggered by mapping updates).
    pub flushes: u64,
    /// Dirty evictions that required a write-back.
    pub writebacks: u64,
    /// Dynamic-indexing updates applied during the run.
    pub updates: u64,
    /// The breakeven time used by the Block Control, in cycles.
    pub breakeven_cycles: u32,
    /// Per-bank statistics, indexed by physical bank id.
    pub per_bank: Vec<BankStats>,
    /// Energy of the partitioned, power-managed cache.
    pub energy: EnergyLedger,
    /// Energy the monolithic, always-on cache would have burned on the
    /// same trace (the paper's Esav baseline).
    pub monolithic_baseline: EnergyLedger,
}

impl SimOutcome {
    /// Miss rate over the whole run.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Useful idleness of `bank`: time-weighted fraction of cycles in idle
    /// intervals longer than the breakeven time (Table I's metric).
    pub fn useful_idleness(&self, bank: u32) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.per_bank[bank as usize].idle.long_idle_cycles as f64 / self.cycles as f64
        }
    }

    /// Fraction of the run `bank` actually spent asleep (the quantity the
    /// aging model consumes; always at most the useful idleness).
    pub fn sleep_fraction(&self, bank: u32) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.per_bank[bank as usize].sleep_cycles as f64 / self.cycles as f64
        }
    }

    /// Useful idleness of every bank.
    pub fn useful_idleness_all(&self) -> Vec<f64> {
        (0..self.per_bank.len() as u32)
            .map(|b| self.useful_idleness(b))
            .collect()
    }

    /// Sleep fraction of every bank.
    pub fn sleep_fraction_all(&self) -> Vec<f64> {
        (0..self.per_bank.len() as u32)
            .map(|b| self.sleep_fraction(b))
            .collect()
    }

    /// Average useful idleness over the banks (Table I's "Average").
    pub fn avg_useful_idleness(&self) -> f64 {
        let v = self.useful_idleness_all();
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Worst-case (minimum) useful idleness over the banks — the quantity
    /// that limits lifetime without re-indexing (§III-A2).
    pub fn min_useful_idleness(&self) -> f64 {
        self.useful_idleness_all()
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// Average sleep fraction over the banks.
    pub fn avg_sleep_fraction(&self) -> f64 {
        let v = self.sleep_fraction_all();
        v.iter().sum::<f64>() / v.len() as f64
    }

    /// Minimum sleep fraction over the banks.
    pub fn min_sleep_fraction(&self) -> f64 {
        self.sleep_fraction_all()
            .into_iter()
            .fold(f64::INFINITY, f64::min)
    }

    /// Energy saving versus the monolithic always-on baseline (Esav).
    pub fn energy_saving(&self) -> f64 {
        self.energy.saving_vs(&self.monolithic_baseline)
    }

    /// Total bank wake-ups across the run.
    pub fn total_wakes(&self) -> u64 {
        self.per_bank.iter().map(|b| b.wakes).sum()
    }

    /// Performance overhead of drowsy wake-ups: the fraction of cycles
    /// lost to wake stalls if each wake costs `wake_latency_cycles`.
    /// The paper argues this is negligible; typical numbers here are
    /// well below 1 %.
    pub fn wake_stall_overhead(&self, wake_latency_cycles: u32) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            (self.total_wakes() * wake_latency_cycles as u64) as f64 / self.cycles as f64
        }
    }

    /// Checks internal conservation invariants; returns a description of
    /// the first violation, if any. Exercised by tests and examples.
    pub fn validate(&self) -> Result<(), String> {
        if self.hits + self.misses != self.accesses {
            return Err(format!(
                "hits ({}) + misses ({}) != accesses ({})",
                self.hits, self.misses, self.accesses
            ));
        }
        let bank_accesses: u64 = self.per_bank.iter().map(|b| b.accesses).sum();
        if bank_accesses != self.accesses {
            return Err(format!(
                "per-bank accesses ({bank_accesses}) != total accesses ({})",
                self.accesses
            ));
        }
        for (i, b) in self.per_bank.iter().enumerate() {
            if b.idle.idle_cycles + b.accesses != self.cycles {
                return Err(format!(
                    "bank {i}: idle ({}) + busy ({}) != cycles ({})",
                    b.idle.idle_cycles, b.accesses, self.cycles
                ));
            }
            if b.sleep_cycles > b.idle.idle_cycles {
                return Err(format!(
                    "bank {i}: sleeping ({}) more than idle ({})",
                    b.sleep_cycles, b.idle.idle_cycles
                ));
            }
            if b.idle.long_idle_cycles > b.idle.idle_cycles {
                return Err(format!("bank {i}: long idle exceeds idle"));
            }
        }
        if self.energy.total_fj() < 0.0 {
            return Err("negative energy".to_string());
        }
        if self.writebacks > self.misses {
            return Err(format!(
                "writebacks ({}) exceed misses ({})",
                self.writebacks, self.misses
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn outcome_with(per_bank: Vec<BankStats>, cycles: u64, accesses: u64) -> SimOutcome {
        SimOutcome {
            cycles,
            accesses,
            hits: accesses,
            misses: 0,
            flushes: 0,
            writebacks: 0,
            updates: 0,
            breakeven_cycles: 8,
            per_bank,
            energy: EnergyLedger::default(),
            monolithic_baseline: EnergyLedger::default(),
        }
    }

    fn bank(accesses: u64, idle: u64, long: u64, sleep: u64) -> BankStats {
        BankStats {
            accesses,
            sleep_cycles: sleep,
            wakes: 0,
            idle: IdleStats {
                idle_cycles: idle,
                long_idle_cycles: long,
                intervals: 1,
                long_intervals: 1,
                histogram: vec![0; 32],
            },
        }
    }

    #[test]
    fn validate_accepts_consistent_outcome() {
        let o = outcome_with(vec![bank(60, 40, 30, 20), bank(40, 60, 50, 40)], 100, 100);
        assert!(o.validate().is_ok());
        assert!((o.useful_idleness(0) - 0.3).abs() < 1e-12);
        assert!((o.sleep_fraction(1) - 0.4).abs() < 1e-12);
        assert!((o.avg_useful_idleness() - 0.4).abs() < 1e-12);
        assert!((o.min_useful_idleness() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn validate_rejects_busy_idle_mismatch() {
        let o = outcome_with(vec![bank(50, 40, 10, 5)], 100, 50);
        assert!(o.validate().is_err());
    }

    #[test]
    fn validate_rejects_oversleeping() {
        let o = outcome_with(vec![bank(60, 40, 40, 50)], 100, 60);
        assert!(o.validate().is_err());
    }

    #[test]
    fn miss_rate_of_empty_run_is_zero() {
        let o = outcome_with(vec![bank(0, 0, 0, 0)], 0, 0);
        assert_eq!(o.miss_rate(), 0.0);
        assert_eq!(o.useful_idleness(0), 0.0);
    }
}
