//! Error type for the SRAM power-model crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the SRAM power models.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PowerError {
    /// A technology or model parameter was outside its physical range.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
        /// Human-readable description of the accepted range.
        expected: &'static str,
    },
    /// An array dimension was zero or not a power of two where required.
    InvalidGeometry {
        /// Name of the offending dimension.
        name: &'static str,
        /// The rejected value.
        value: u64,
        /// Human-readable description of the accepted range.
        expected: &'static str,
    },
    /// A bank count exceeded the feasible partitioning range.
    InfeasiblePartitioning {
        /// The requested number of banks.
        banks: u32,
        /// The maximum supported by the overhead characterization.
        max_banks: u32,
    },
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::InvalidParameter {
                name,
                value,
                expected,
            } => write!(
                f,
                "parameter `{name}` = {value} is invalid (expected {expected})"
            ),
            PowerError::InvalidGeometry {
                name,
                value,
                expected,
            } => write!(
                f,
                "geometry `{name}` = {value} is invalid (expected {expected})"
            ),
            PowerError::InfeasiblePartitioning { banks, max_banks } => write!(
                f,
                "partitioning into {banks} banks exceeds the characterized maximum of {max_banks}"
            ),
        }
    }
}

impl Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PowerError::InfeasiblePartitioning {
            banks: 32,
            max_banks: 16,
        };
        assert!(e.to_string().contains("32"));
        assert!(e.to_string().contains("16"));
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<PowerError>();
    }
}
