//! Technology parameters for the analytical SRAM models.

use crate::error::PowerError;

/// A named bundle of technology constants.
///
/// All energies are in femtojoules, powers are implied per clock cycle
/// (energy per cycle = power × cycle time), and geometric quantities are in
/// bits. The defaults are calibrated so that the full pipeline lands near
/// the operating points of the paper's STM 45 nm characterization (see
/// `DESIGN.md` §6, substitution S2).
///
/// # Examples
///
/// ```
/// let tech = sram_power::Technology::default_45nm();
/// assert!(tech.vdd() > tech.vdd_low());
/// assert!(tech.drowsy_leak_factor() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Technology {
    vdd: f64,
    vdd_low: f64,
    cycle_ns: f64,
    dyn_fixed_fj_per_bit: f64,
    dyn_bitline_fj_per_bit_row: f64,
    leak_fj_per_bit_cycle: f64,
    drowsy_leak_factor: f64,
    wake_fj_per_data_bit: f64,
    wake_fj_per_tag_bit: f64,
    addr_bits: u32,
}

/// Builder for [`Technology`] values.
///
/// Start from [`Technology::builder`] (pre-seeded with the 45 nm defaults)
/// and override the fields under study:
///
/// ```
/// use sram_power::Technology;
///
/// let tech = Technology::builder()
///     .drowsy_leak_factor(0.10)
///     .cycle_ns(0.8)
///     .build()?;
/// assert_eq!(tech.cycle_ns(), 0.8);
/// # Ok::<(), sram_power::PowerError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TechnologyBuilder {
    inner: Technology,
}

impl Technology {
    /// The calibrated 45 nm-flavoured default parameter set.
    ///
    /// * `Vdd = 1.1 V`, drowsy rail `0.75 V`, 1 ns cycle;
    /// * per-access dynamic energy `width_bits · (D0 + D1 · depth)` with
    ///   `D0 = 12.8 fJ`, `D1 = 0.02 fJ/row` (bitline capacitance grows
    ///   linearly with array depth; `D0/D1 = 640` reproduces the paper's
    ///   size-dependent savings);
    /// * leakage `2 nW/bit` (LP process at 85 °C), drowsy retention at 15 %
    ///   of active leakage;
    /// * reactivation `0.05 fJ/bit` for data, `0.2 fJ/bit` for tags
    ///   (the paper's "larger reactivation penalty" on tag arrays);
    /// * 32-bit physical addresses.
    pub fn default_45nm() -> Self {
        Self {
            vdd: 1.1,
            vdd_low: 0.75,
            cycle_ns: 1.0,
            dyn_fixed_fj_per_bit: 12.8,
            dyn_bitline_fj_per_bit_row: 0.02,
            leak_fj_per_bit_cycle: 0.002,
            drowsy_leak_factor: 0.15,
            wake_fj_per_data_bit: 0.05,
            wake_fj_per_tag_bit: 0.2,
            addr_bits: 32,
        }
    }

    /// Starts a builder seeded with [`Technology::default_45nm`].
    pub fn builder() -> TechnologyBuilder {
        TechnologyBuilder {
            inner: Self::default_45nm(),
        }
    }

    /// Nominal supply voltage (V).
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Drowsy (retention) supply voltage (V).
    pub fn vdd_low(&self) -> f64 {
        self.vdd_low
    }

    /// Clock cycle time (ns).
    pub fn cycle_ns(&self) -> f64 {
        self.cycle_ns
    }

    /// Fixed per-access energy per bit of accessed width (fJ): sense
    /// amplifiers, drivers, I/O.
    pub fn dyn_fixed_fj_per_bit(&self) -> f64 {
        self.dyn_fixed_fj_per_bit
    }

    /// Bitline energy per bit of accessed width per row of array depth
    /// (fJ): the capacity-dependent term.
    pub fn dyn_bitline_fj_per_bit_row(&self) -> f64 {
        self.dyn_bitline_fj_per_bit_row
    }

    /// Active leakage energy per bit per cycle (fJ).
    pub fn leak_fj_per_bit_cycle(&self) -> f64 {
        self.leak_fj_per_bit_cycle
    }

    /// Fraction of active leakage that remains in the drowsy state.
    pub fn drowsy_leak_factor(&self) -> f64 {
        self.drowsy_leak_factor
    }

    /// Reactivation energy per data bit (fJ).
    pub fn wake_fj_per_data_bit(&self) -> f64 {
        self.wake_fj_per_data_bit
    }

    /// Reactivation energy per tag bit (fJ); larger than the data-bit cost
    /// per the paper's §IV-B1 observation.
    pub fn wake_fj_per_tag_bit(&self) -> f64 {
        self.wake_fj_per_tag_bit
    }

    /// Physical address width in bits (used for tag sizing).
    pub fn addr_bits(&self) -> u32 {
        self.addr_bits
    }

    fn validate(&self) -> Result<(), PowerError> {
        let positive: [(&'static str, f64); 8] = [
            ("vdd", self.vdd),
            ("vdd_low", self.vdd_low),
            ("cycle_ns", self.cycle_ns),
            ("dyn_fixed_fj_per_bit", self.dyn_fixed_fj_per_bit),
            (
                "dyn_bitline_fj_per_bit_row",
                self.dyn_bitline_fj_per_bit_row,
            ),
            ("leak_fj_per_bit_cycle", self.leak_fj_per_bit_cycle),
            ("wake_fj_per_data_bit", self.wake_fj_per_data_bit),
            ("wake_fj_per_tag_bit", self.wake_fj_per_tag_bit),
        ];
        for (name, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(PowerError::InvalidParameter {
                    name,
                    value: v,
                    expected: "a finite positive value",
                });
            }
        }
        if self.vdd_low >= self.vdd {
            return Err(PowerError::InvalidParameter {
                name: "vdd_low",
                value: self.vdd_low,
                expected: "vdd_low < vdd",
            });
        }
        if !(0.0..1.0).contains(&self.drowsy_leak_factor) {
            return Err(PowerError::InvalidParameter {
                name: "drowsy_leak_factor",
                value: self.drowsy_leak_factor,
                expected: "0 <= factor < 1",
            });
        }
        if !(8..=64).contains(&self.addr_bits) {
            return Err(PowerError::InvalidParameter {
                name: "addr_bits",
                value: self.addr_bits as f64,
                expected: "8..=64 address bits",
            });
        }
        Ok(())
    }
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $name:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            #[must_use]
            pub fn $name(mut self, value: $ty) -> Self {
                self.inner.$name = value;
                self
            }
        )*
    };
}

impl TechnologyBuilder {
    builder_setters! {
        /// Sets the nominal supply voltage (V).
        vdd: f64,
        /// Sets the drowsy supply voltage (V).
        vdd_low: f64,
        /// Sets the clock cycle time (ns).
        cycle_ns: f64,
        /// Sets the fixed per-access energy per width bit (fJ).
        dyn_fixed_fj_per_bit: f64,
        /// Sets the bitline energy per width bit per row (fJ).
        dyn_bitline_fj_per_bit_row: f64,
        /// Sets the active leakage per bit per cycle (fJ).
        leak_fj_per_bit_cycle: f64,
        /// Sets the drowsy leakage fraction.
        drowsy_leak_factor: f64,
        /// Sets the data-array reactivation energy per bit (fJ).
        wake_fj_per_data_bit: f64,
        /// Sets the tag-array reactivation energy per bit (fJ).
        wake_fj_per_tag_bit: f64,
        /// Sets the physical address width (bits).
        addr_bits: u32,
    }

    /// Validates and produces the [`Technology`].
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if any field is outside its
    /// physical range.
    pub fn build(self) -> Result<Technology, PowerError> {
        self.inner.validate()?;
        Ok(self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(Technology::default_45nm().validate().is_ok());
    }

    #[test]
    fn builder_overrides_and_validates() {
        let t = Technology::builder().cycle_ns(2.0).build().unwrap();
        assert_eq!(t.cycle_ns(), 2.0);
        assert!(Technology::builder().vdd_low(2.0).build().is_err());
        assert!(Technology::builder()
            .drowsy_leak_factor(1.5)
            .build()
            .is_err());
        assert!(Technology::builder()
            .leak_fj_per_bit_cycle(-1.0)
            .build()
            .is_err());
        assert!(Technology::builder().addr_bits(4).build().is_err());
    }

    #[test]
    fn tags_wake_dearer_than_data_by_default() {
        let t = Technology::default_45nm();
        assert!(t.wake_fj_per_tag_bit() > t.wake_fj_per_data_bit());
    }
}
