//! The core analytical energy model.

use crate::array::BankArray;
use crate::error::PowerError;
use crate::tech::Technology;

/// Per-access, leakage and reactivation energy for SRAM arrays.
///
/// The dynamic model is `E_access = width_bits · (D0 + D1 · depth)`:
/// the fixed term covers sense amplifiers/drivers/I/O per accessed bit,
/// the depth term the bitline capacitance each accessed bit swings. This
/// linear-in-depth form is what makes partitioning profitable (a bank has
/// `depth / M` rows) and makes the savings grow with cache *depth* — the
/// paper's Tables II and III both follow from it.
///
/// # Examples
///
/// ```
/// use sram_power::{BankArray, EnergyModel, Technology};
///
/// # fn main() -> Result<(), sram_power::PowerError> {
/// let model = EnergyModel::new(Technology::default_45nm())?;
/// let mono = BankArray::new(1024, 128, 19)?;
/// let quarter = mono.split(4)?;
/// // Four banks leak exactly as much as the monolith they replace...
/// assert_eq!(
///     4.0 * model.leak_fj_per_cycle_active(&quarter),
///     model.leak_fj_per_cycle_active(&mono),
/// );
/// // ...but each access touches a much shallower array.
/// assert!(model.access_energy_fj(&quarter) < 0.6 * model.access_energy_fj(&mono));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    tech: Technology,
}

impl EnergyModel {
    /// Wraps a validated [`Technology`].
    ///
    /// # Errors
    ///
    /// Currently infallible for a validated `Technology`; the `Result`
    /// keeps room for cross-parameter checks without breaking callers.
    pub fn new(tech: Technology) -> Result<Self, PowerError> {
        Ok(Self { tech })
    }

    /// The underlying technology parameters.
    pub fn technology(&self) -> &Technology {
        &self.tech
    }

    /// Dynamic energy of one access to `array`, in fJ.
    ///
    /// Covers reading/writing one line *and* its tag entry.
    pub fn access_energy_fj(&self, array: &BankArray) -> f64 {
        let width = array.access_width_bits() as f64;
        let depth = array.depth_lines() as f64;
        width * (self.tech.dyn_fixed_fj_per_bit() + self.tech.dyn_bitline_fj_per_bit_row() * depth)
    }

    /// Active-state leakage of `array` over one clock cycle, in fJ.
    pub fn leak_fj_per_cycle_active(&self, array: &BankArray) -> f64 {
        array.total_bits() as f64 * self.tech.leak_fj_per_bit_cycle()
    }

    /// Drowsy-state leakage of `array` over one clock cycle, in fJ.
    pub fn leak_fj_per_cycle_drowsy(&self, array: &BankArray) -> f64 {
        self.leak_fj_per_cycle_active(array) * self.tech.drowsy_leak_factor()
    }

    /// Leakage saved per cycle by a sleeping bank, in fJ.
    pub fn sleep_saving_fj_per_cycle(&self, array: &BankArray) -> f64 {
        self.leak_fj_per_cycle_active(array) - self.leak_fj_per_cycle_drowsy(array)
    }

    /// Reactivation energy to bring `array` back to the active rail, in fJ.
    ///
    /// Tags pay a larger per-bit penalty (paper §IV-B1): restoring the tag
    /// array's peripheral state dominates its small bit count.
    pub fn wake_energy_fj(&self, array: &BankArray) -> f64 {
        array.data_bits() as f64 * self.tech.wake_fj_per_data_bit()
            + array.tag_bits() as f64 * self.tech.wake_fj_per_tag_bit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> EnergyModel {
        EnergyModel::new(Technology::default_45nm()).unwrap()
    }

    fn cache_16k() -> BankArray {
        BankArray::new(1024, 128, 19).unwrap()
    }

    #[test]
    fn access_energy_grows_with_depth() {
        let m = model();
        let shallow = BankArray::new(256, 128, 19).unwrap();
        let deep = BankArray::new(2048, 128, 19).unwrap();
        assert!(m.access_energy_fj(&deep) > m.access_energy_fj(&shallow));
    }

    #[test]
    fn access_energy_scales_linearly_with_width() {
        let m = model();
        let narrow = BankArray::new(512, 128, 0).unwrap();
        let wide = BankArray::new(512, 256, 0).unwrap();
        let ratio = m.access_energy_fj(&wide) / m.access_energy_fj(&narrow);
        assert!((ratio - 2.0).abs() < 1e-12);
    }

    #[test]
    fn partitioned_access_saving_matches_calibration() {
        // At 1024 lines and M = 4 the dynamic saving should be ~45 % —
        // the dominant contribution to the paper's 44.3 % Esav at 16 kB.
        let m = model();
        let mono = cache_16k();
        let bank = mono.split(4).unwrap();
        let save = 1.0 - m.access_energy_fj(&bank) / m.access_energy_fj(&mono);
        assert!(
            (0.35..0.55).contains(&save),
            "dynamic partition saving at 16 kB/M=4 should be ~0.45, got {save}"
        );
    }

    #[test]
    fn drowsy_leak_is_a_strict_saving() {
        let m = model();
        let a = cache_16k();
        assert!(m.leak_fj_per_cycle_drowsy(&a) < m.leak_fj_per_cycle_active(&a));
        assert!(m.sleep_saving_fj_per_cycle(&a) > 0.0);
    }

    #[test]
    fn wake_energy_weights_tags_heavier_per_bit() {
        let m = model();
        let data_only = BankArray::new(256, 128, 0).unwrap();
        let tags_only = BankArray::new(256, 1, 127).unwrap();
        // Same total bits, tag-heavy array costs more to wake.
        assert_eq!(data_only.total_bits(), tags_only.total_bits());
        assert!(m.wake_energy_fj(&tags_only) > m.wake_energy_fj(&data_only));
    }
}
