//! Energy accounting ledger.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Itemized energy totals accumulated during a simulation, in femtojoules.
///
/// The ledger is a passive data structure (public fields by design): the
/// cache simulator adds to it on every event, and the experiment harness
/// reads the breakdown when computing `Esav`.
///
/// # Examples
///
/// ```
/// use sram_power::EnergyLedger;
///
/// let mut ledger = EnergyLedger::default();
/// ledger.dynamic_fj += 120.0;
/// ledger.leakage_fj += 30.0;
/// assert_eq!(ledger.total_fj(), 150.0);
///
/// let doubled = ledger + ledger;
/// assert_eq!(doubled.total_fj(), 300.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyLedger {
    /// Per-access dynamic energy (data + tag reads/writes).
    pub dynamic_fj: f64,
    /// Leakage integrated over cycles (active + drowsy states).
    pub leakage_fj: f64,
    /// Bank reactivation (wake-up) energy.
    pub wake_fj: f64,
    /// Partitioning overhead (decoder, buses, rail muxes).
    pub overhead_fj: f64,
}

impl EnergyLedger {
    /// Creates an empty ledger (same as `default()`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sum of all categories, fJ.
    pub fn total_fj(&self) -> f64 {
        self.dynamic_fj + self.leakage_fj + self.wake_fj + self.overhead_fj
    }

    /// Relative energy saving of `self` against a `baseline` ledger:
    /// `1 − total/total_baseline`. Returns 0 for an empty baseline.
    pub fn saving_vs(&self, baseline: &EnergyLedger) -> f64 {
        let base = baseline.total_fj();
        if base <= 0.0 {
            0.0
        } else {
            1.0 - self.total_fj() / base
        }
    }

    /// Fraction of the total attributable to leakage.
    pub fn leakage_share(&self) -> f64 {
        let t = self.total_fj();
        if t <= 0.0 {
            0.0
        } else {
            self.leakage_fj / t
        }
    }
}

impl Add for EnergyLedger {
    type Output = EnergyLedger;

    fn add(self, rhs: EnergyLedger) -> EnergyLedger {
        EnergyLedger {
            dynamic_fj: self.dynamic_fj + rhs.dynamic_fj,
            leakage_fj: self.leakage_fj + rhs.leakage_fj,
            wake_fj: self.wake_fj + rhs.wake_fj,
            overhead_fj: self.overhead_fj + rhs.overhead_fj,
        }
    }
}

impl AddAssign for EnergyLedger {
    fn add_assign(&mut self, rhs: EnergyLedger) {
        *self = *self + rhs;
    }
}

impl fmt::Display for EnergyLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dyn {:.1} fJ + leak {:.1} fJ + wake {:.1} fJ + ovh {:.1} fJ = {:.1} fJ",
            self.dynamic_fj,
            self.leakage_fj,
            self.wake_fj,
            self.overhead_fj,
            self.total_fj()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_shares() {
        let l = EnergyLedger {
            dynamic_fj: 60.0,
            leakage_fj: 30.0,
            wake_fj: 5.0,
            overhead_fj: 5.0,
        };
        assert_eq!(l.total_fj(), 100.0);
        assert!((l.leakage_share() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn saving_vs_baseline() {
        let base = EnergyLedger {
            dynamic_fj: 100.0,
            ..Default::default()
        };
        let part = EnergyLedger {
            dynamic_fj: 55.0,
            ..Default::default()
        };
        assert!((part.saving_vs(&base) - 0.45).abs() < 1e-12);
        assert_eq!(part.saving_vs(&EnergyLedger::default()), 0.0);
    }

    #[test]
    fn add_and_add_assign_agree() {
        let a = EnergyLedger {
            dynamic_fj: 1.0,
            leakage_fj: 2.0,
            wake_fj: 3.0,
            overhead_fj: 4.0,
        };
        let mut b = a;
        b += a;
        assert_eq!(b, a + a);
        assert_eq!(b.total_fj(), 20.0);
    }

    #[test]
    fn display_lists_all_categories() {
        let s = EnergyLedger::default().to_string();
        for word in ["dyn", "leak", "wake", "ovh"] {
            assert!(s.contains(word), "missing {word} in {s}");
        }
    }
}
