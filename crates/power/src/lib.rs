//! Analytical SRAM energy/power models for partitioned caches.
//!
//! This crate stands in for the energy numbers the DATE 2011 paper
//! characterized from an STMicroelectronics 45 nm design kit and from the
//! partitioning-overhead data of Loghi et al. (ref. \[10\]). It provides:
//!
//! * a [`tech::Technology`] parameter set (calibrated 45 nm-like
//!   defaults),
//! * [`array::BankArray`] bit-count bookkeeping for data + tag
//!   arrays,
//! * an [`energy::EnergyModel`] with CACTI-flavoured capacity
//!   scaling: per-access dynamic energy `width · (D0 + D1 · depth)`,
//!   leakage proportional to bit count, a drowsy-state leakage factor,
//!   and reactivation (wake-up) energies with the paper's "tags have a
//!   larger reactivation penalty" asymmetry,
//! * [`breakeven`] analysis: the idle-cycle threshold after which sleeping
//!   a bank pays off, and the Block Control counter width it implies,
//! * a [`overhead::PartitionOverhead`] model for the
//!   wiring/decoder cost of splitting a cache into `M` uniform banks, and
//! * an [`account::EnergyLedger`] used by the cache simulator
//!   to account dynamic/leakage/wake/overhead energy.
//!
//! # Quick start
//!
//! ```
//! use sram_power::{BankArray, EnergyModel, Technology};
//!
//! # fn main() -> Result<(), sram_power::PowerError> {
//! let tech = Technology::default_45nm();
//! let model = EnergyModel::new(tech)?;
//! // A 16 kB direct-mapped cache with 16 B lines: 1024 lines of
//! // 128 data bits + 19 tag bits (32-bit addresses, valid bit included).
//! let mono = BankArray::new(1024, 128, 19)?;
//! let bank = BankArray::new(256, 128, 19)?;
//! // Partitioning shrinks the per-access energy.
//! assert!(model.access_energy_fj(&bank) < model.access_energy_fj(&mono));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod array;
pub mod breakeven;
pub mod energy;
pub mod error;
pub mod overhead;
pub mod tech;

pub use account::EnergyLedger;
pub use array::BankArray;
pub use breakeven::BreakevenAnalysis;
pub use energy::EnergyModel;
pub use error::PowerError;
pub use overhead::PartitionOverhead;
pub use tech::Technology;
