//! Partitioning overhead characterization.
//!
//! Splitting a memory into `M` blocks is not free: address/data buses and
//! control signals must be routed to every block, the decoder `D` and the
//! per-bank rail muxes add logic, and the floorplan grows. The paper
//! inherits overhead numbers from Loghi et al. (ref. \[10\]) and argues that
//! while *non-uniform* partitions stop paying off beyond 4–5 blocks,
//! *uniform* blocks floorplan so much better that up to `M = 16` is
//! feasible (§IV-B3). This module is a parametric stand-in for that
//! characterization (substitution S4 in `DESIGN.md`).

use crate::error::PowerError;

/// Maximum bank count the characterization covers.
pub const MAX_BANKS: u32 = 16;

/// Parametric wiring/decoder overhead model for an `M`-bank uniform
/// partition.
///
/// # Examples
///
/// ```
/// use sram_power::PartitionOverhead;
///
/// let ovh4 = PartitionOverhead::for_banks(4)?;
/// let ovh16 = PartitionOverhead::for_banks(16)?;
/// // Overhead grows with the number of banks...
/// assert!(ovh16.access_energy_factor() > ovh4.access_energy_factor());
/// // ...and 32 banks is beyond the characterized range.
/// assert!(PartitionOverhead::for_banks(32).is_err());
/// # Ok::<(), sram_power::PowerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PartitionOverhead {
    banks: u32,
    access_energy_factor: f64,
    leakage_factor: f64,
    area_factor: f64,
}

impl PartitionOverhead {
    /// Characterizes the overhead of an `banks`-way uniform partition.
    ///
    /// The factors are multiplicative adders over the un-partitioned
    /// baseline:
    ///
    /// * per-access energy: `+0.8 % · M` (bus fan-out, decoder D, rail mux
    ///   switching),
    /// * leakage: `+0.3 % · M` (repeaters, rail-mux and control logic),
    /// * area: `+1.2 % · M` (uniform blocks tile well; non-uniform ones
    ///   would be far worse, which is the paper's argument for uniformity).
    ///
    /// `banks = 1` (no partitioning) has zero overhead by definition.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InfeasiblePartitioning`] if `banks` exceeds
    /// [`MAX_BANKS`] or is zero, matching the paper's feasibility claim.
    pub fn for_banks(banks: u32) -> Result<Self, PowerError> {
        if banks == 0 || banks > MAX_BANKS {
            return Err(PowerError::InfeasiblePartitioning {
                banks,
                max_banks: MAX_BANKS,
            });
        }
        let extra = (banks - 1) as f64;
        Ok(Self {
            banks,
            access_energy_factor: 1.0 + 0.008 * extra,
            leakage_factor: 1.0 + 0.003 * extra,
            area_factor: 1.0 + 0.012 * extra,
        })
    }

    /// Number of banks characterized.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Multiplier on per-access dynamic energy.
    pub fn access_energy_factor(&self) -> f64 {
        self.access_energy_factor
    }

    /// Multiplier on total leakage.
    pub fn leakage_factor(&self) -> f64 {
        self.leakage_factor
    }

    /// Multiplier on array area.
    pub fn area_factor(&self) -> f64 {
        self.area_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_partitioning_no_overhead() {
        let o = PartitionOverhead::for_banks(1).unwrap();
        assert_eq!(o.access_energy_factor(), 1.0);
        assert_eq!(o.leakage_factor(), 1.0);
        assert_eq!(o.area_factor(), 1.0);
    }

    #[test]
    fn overhead_monotone_in_banks() {
        let mut last = 0.0;
        for m in [1u32, 2, 4, 8, 16] {
            let o = PartitionOverhead::for_banks(m).unwrap();
            assert!(o.access_energy_factor() > last);
            last = o.access_energy_factor();
        }
    }

    #[test]
    fn matches_paper_feasibility_range() {
        assert!(PartitionOverhead::for_banks(16).is_ok());
        assert!(PartitionOverhead::for_banks(17).is_err());
        assert!(PartitionOverhead::for_banks(0).is_err());
    }

    #[test]
    fn overhead_stays_small_within_range() {
        // Even at M = 16 the energy overhead must not eat the ~45 % dynamic
        // partitioning gain (the paper's argument for uniform banks).
        let o = PartitionOverhead::for_banks(16).unwrap();
        assert!(o.access_energy_factor() < 1.20);
        assert!(o.leakage_factor() < 1.10);
    }
}
