//! Breakeven-time analysis for bank sleep decisions.
//!
//! "The value of the breakeven time depends essentially on (i) the size of
//! the block to be turned off, and (ii) the ratio between the energy spent
//! in the off and in the on state. [...] in our case \[it\] is in the order
//! of a few tens of cycles [...] Therefore, 5- or 6-bit counters suffice."
//! (paper §III-A1).

use crate::array::BankArray;
use crate::energy::EnergyModel;
use crate::error::PowerError;

/// The result of a breakeven computation for one bank.
///
/// # Examples
///
/// ```
/// use sram_power::{BankArray, BreakevenAnalysis, EnergyModel, Technology};
///
/// # fn main() -> Result<(), sram_power::PowerError> {
/// let model = EnergyModel::new(Technology::default_45nm())?;
/// let bank = BankArray::new(256, 128, 19)?; // one bank of a 16 kB / M=4 cache
/// let be = BreakevenAnalysis::for_bank(&model, &bank)?;
/// // The paper's regime: a few tens of cycles, 5-6 bit counters.
/// assert!(be.cycles() >= 8 && be.cycles() <= 256);
/// assert!(be.counter_bits() <= 8);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BreakevenAnalysis {
    cycles: u32,
    counter_bits: u32,
}

impl BreakevenAnalysis {
    /// Computes the breakeven time for `bank`: the smallest number of idle
    /// cycles after which entering the drowsy state saves net energy,
    /// i.e. `ceil(E_wake / ΔP_leak_per_cycle)`.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if the technology's sleep
    /// saving is non-positive (a degenerate drowsy factor of ~1).
    pub fn for_bank(model: &EnergyModel, bank: &BankArray) -> Result<Self, PowerError> {
        let saving = model.sleep_saving_fj_per_cycle(bank);
        if saving <= 0.0 {
            return Err(PowerError::InvalidParameter {
                name: "sleep_saving_fj_per_cycle",
                value: saving,
                expected: "a positive per-cycle saving (drowsy_leak_factor < 1)",
            });
        }
        let wake = model.wake_energy_fj(bank);
        let cycles = (wake / saving).ceil().max(1.0) as u32;
        Ok(Self {
            cycles,
            counter_bits: 32 - cycles.leading_zeros(),
        })
    }

    /// Constructs an explicit breakeven value (for what-if studies).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidParameter`] if `cycles` is zero.
    pub fn from_cycles(cycles: u32) -> Result<Self, PowerError> {
        if cycles == 0 {
            return Err(PowerError::InvalidParameter {
                name: "cycles",
                value: 0.0,
                expected: "a positive cycle count",
            });
        }
        Ok(Self {
            cycles,
            counter_bits: 32 - cycles.leading_zeros(),
        })
    }

    /// The breakeven time in cycles.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Width of the Block Control saturating counter able to count to the
    /// breakeven time.
    pub fn counter_bits(&self) -> u32 {
        self.counter_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::Technology;

    fn model() -> EnergyModel {
        EnergyModel::new(Technology::default_45nm()).unwrap()
    }

    #[test]
    fn paper_regime_few_tens_of_cycles() {
        let m = model();
        // Banks of the paper's three cache sizes at M = 4, 16 B lines.
        for (lines, tag) in [(128u64, 20u64), (256, 19), (512, 18)] {
            let bank = BankArray::new(lines, 128, tag).unwrap();
            let be = BreakevenAnalysis::for_bank(&m, &bank).unwrap();
            assert!(
                (8..=128).contains(&be.cycles()),
                "breakeven {} cycles out of the paper's regime for {lines} lines",
                be.cycles()
            );
            assert!(
                be.counter_bits() <= 7,
                "counter should be 5-6 bits-ish, got {}",
                be.counter_bits()
            );
        }
    }

    #[test]
    fn breakeven_is_size_insensitive_when_scaling_uniformly() {
        // Wake energy and leakage saving both scale with bits, so the
        // breakeven time is nearly independent of the bank size.
        let m = model();
        let small = BankArray::new(128, 128, 20).unwrap();
        let large = BankArray::new(1024, 128, 18).unwrap();
        let be_s = BreakevenAnalysis::for_bank(&m, &small).unwrap().cycles();
        let be_l = BreakevenAnalysis::for_bank(&m, &large).unwrap().cycles();
        let ratio = be_l as f64 / be_s as f64;
        assert!((0.5..2.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn tag_heavy_arrays_need_longer_idleness() {
        let m = model();
        let lean = BankArray::new(256, 128, 10).unwrap();
        let heavy = BankArray::new(256, 128, 40).unwrap();
        let be_lean = BreakevenAnalysis::for_bank(&m, &lean).unwrap().cycles();
        let be_heavy = BreakevenAnalysis::for_bank(&m, &heavy).unwrap().cycles();
        assert!(
            be_heavy > be_lean,
            "more tag bits -> larger wake share -> longer breakeven ({be_heavy} vs {be_lean})"
        );
    }

    #[test]
    fn counter_bits_cover_the_count() {
        for cycles in [1u32, 31, 32, 33, 63, 64, 100] {
            let be = BreakevenAnalysis::from_cycles(cycles).unwrap();
            assert!(1u64 << be.counter_bits() > cycles as u64);
            assert!((1u64 << be.counter_bits()) / 2 <= cycles as u64);
        }
        assert!(BreakevenAnalysis::from_cycles(0).is_err());
    }

    #[test]
    fn degenerate_drowsy_factor_is_rejected() {
        let tech = Technology::builder().drowsy_leak_factor(0.0).build();
        // factor 0 is allowed (full gating) — saving positive.
        assert!(tech.is_ok());
        let m = EnergyModel::new(tech.unwrap()).unwrap();
        let bank = BankArray::new(256, 128, 19).unwrap();
        assert!(BreakevenAnalysis::for_bank(&m, &bank).is_ok());
    }
}
