//! Bit-count bookkeeping for SRAM bank arrays.

use crate::error::PowerError;

/// The dimensions of one SRAM bank: a data array and a tag array sharing
/// the same depth (one tag entry per line).
///
/// # Examples
///
/// ```
/// use sram_power::BankArray;
///
/// // 256 lines of 16 B (128 bits) with 19 tag bits each.
/// let bank = BankArray::new(256, 128, 19)?;
/// assert_eq!(bank.data_bits(), 256 * 128);
/// assert_eq!(bank.tag_bits(), 256 * 19);
/// assert_eq!(bank.total_bits(), 256 * 147);
/// # Ok::<(), sram_power::PowerError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BankArray {
    depth_lines: u64,
    line_bits: u64,
    tag_bits_per_line: u64,
}

impl BankArray {
    /// Creates a bank array description.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidGeometry`] if `depth_lines` or
    /// `line_bits` is zero (a tag-less array — e.g. a scratchpad — may pass
    /// `tag_bits_per_line = 0`).
    pub fn new(
        depth_lines: u64,
        line_bits: u64,
        tag_bits_per_line: u64,
    ) -> Result<Self, PowerError> {
        if depth_lines == 0 {
            return Err(PowerError::InvalidGeometry {
                name: "depth_lines",
                value: 0,
                expected: "a positive line count",
            });
        }
        if line_bits == 0 {
            return Err(PowerError::InvalidGeometry {
                name: "line_bits",
                value: 0,
                expected: "a positive line width",
            });
        }
        Ok(Self {
            depth_lines,
            line_bits,
            tag_bits_per_line,
        })
    }

    /// Number of lines (rows) in the bank.
    pub fn depth_lines(&self) -> u64 {
        self.depth_lines
    }

    /// Width of a data line in bits.
    pub fn line_bits(&self) -> u64 {
        self.line_bits
    }

    /// Tag bits stored per line (including valid/dirty bits).
    pub fn tag_bits_per_line(&self) -> u64 {
        self.tag_bits_per_line
    }

    /// Total data-array bits.
    pub fn data_bits(&self) -> u64 {
        self.depth_lines * self.line_bits
    }

    /// Total tag-array bits.
    pub fn tag_bits(&self) -> u64 {
        self.depth_lines * self.tag_bits_per_line
    }

    /// Total storage bits (data + tag).
    pub fn total_bits(&self) -> u64 {
        self.data_bits() + self.tag_bits()
    }

    /// Accessed width per cache access, in bits (one line plus its tag).
    pub fn access_width_bits(&self) -> u64 {
        self.line_bits + self.tag_bits_per_line
    }

    /// Splits this array into `banks` uniform sub-banks (same width,
    /// `depth / banks` lines each).
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::InvalidGeometry`] if `banks` is zero or does
    /// not divide the depth evenly.
    pub fn split(&self, banks: u32) -> Result<BankArray, PowerError> {
        if banks == 0 || !self.depth_lines.is_multiple_of(banks as u64) {
            return Err(PowerError::InvalidGeometry {
                name: "banks",
                value: banks as u64,
                expected: "a positive divisor of the line count",
            });
        }
        BankArray::new(
            self.depth_lines / banks as u64,
            self.line_bits,
            self.tag_bits_per_line,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_accounting_adds_up() {
        let b = BankArray::new(1024, 128, 19).unwrap();
        assert_eq!(b.total_bits(), b.data_bits() + b.tag_bits());
        assert_eq!(b.access_width_bits(), 147);
    }

    #[test]
    fn split_preserves_total_bits() {
        let mono = BankArray::new(1024, 128, 19).unwrap();
        let bank = mono.split(4).unwrap();
        assert_eq!(bank.depth_lines(), 256);
        assert_eq!(bank.total_bits() * 4, mono.total_bits());
    }

    #[test]
    fn split_rejects_bad_divisors() {
        let mono = BankArray::new(1024, 128, 19).unwrap();
        assert!(mono.split(0).is_err());
        assert!(mono.split(3).is_err());
        assert!(mono.split(2048).is_err());
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(BankArray::new(0, 128, 19).is_err());
        assert!(BankArray::new(64, 0, 19).is_err());
        assert!(
            BankArray::new(64, 128, 0).is_ok(),
            "tag-less arrays are fine"
        );
    }
}
