//! Properties of the L1+L2 hierarchy: the L2 access stream is *exactly*
//! the L1 miss stream (the filtering that induces L2 idleness), the
//! geometry defaults are invisible (a ways=1 single-level spec emits
//! the historic bytes), per-level sleep fractions are sane, and — the
//! acceptance pin — an L2 behind a 4-way L1 sleeps strictly more than
//! the L1 itself on a pinned workload.

use nbti_cache_repro::arch::model::ModelContext;
use nbti_cache_repro::arch::study::{StudyReport, StudySpec};
use nbti_cache_repro::sim::{
    Access, CacheGeometry, CacheHierarchy, IdentityMapping, SimConfig, Simulator,
};

const CASES: u32 = if cfg!(debug_assertions) { 8 } else { 24 };

fn simulator(size: u64, line: u32, ways: u32, banks: u32) -> Simulator {
    let geom = CacheGeometry::new(size, line, ways, banks).unwrap();
    Simulator::new(SimConfig::new(geom).unwrap(), Box::new(IdentityMapping)).unwrap()
}

fn run(spec: StudySpec) -> StudyReport {
    spec.run(&ModelContext::new()).expect("study runs")
}

/// The defining hierarchy invariant, on random traces and geometries:
/// every L1 miss — and nothing else — reaches the L2, on the cycle it
/// happened.
#[test]
fn l2_stream_is_exactly_the_l1_miss_stream() {
    quickprop::cases(CASES, |g| {
        let seed = g.u64_in(0..1_000_000);
        let l1_ways = *g.pick(&[1u32, 2, 4]);
        let l2_ways = *g.pick(&[1u32, 4]);
        let mut hier = CacheHierarchy::new(
            simulator(8 * 1024, 16, l1_ways, 4),
            simulator(32 * 1024, 16, l2_ways, 4),
        )
        .unwrap();
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            hier.step(Access::read(x % (256 * 1024)));
        }
        let out = hier.finish();
        out.validate().expect("hierarchy invariants");
        assert_eq!(
            out.l2.accesses, out.l1.misses,
            "L2 must see exactly the L1 miss stream"
        );
        assert_eq!(
            out.l2.cycles, out.l1.cycles,
            "both levels live on the same clock"
        );
        assert!(
            out.l2.misses <= out.l2.accesses,
            "L2 misses bounded by its accesses"
        );
    });
}

/// Opening the geometry axis must be invisible at the defaults: a spec
/// that names ways=1 / lru / no-L2 explicitly produces the *same bytes*
/// as one that never mentions geometry — and neither emits the new keys.
#[test]
fn single_level_ways1_spec_emits_the_historic_bytes() {
    let base = || {
        StudySpec::new("historic shape")
            .cache_kb([16])
            .line_bytes([16])
            .banks([4])
            .policies(["identity", "probing"])
            .workload_names(["CRC32"])
            .expect("suite workload resolves")
            .trace_cycles(40_000)
    };
    let implicit = run(base());
    let explicit = run(base()
        .ways([1])
        .replacement(["lru"])
        .l2_cache_kb([0])
        .l2_ways([1]));
    assert_eq!(
        implicit.to_json(),
        explicit.to_json(),
        "explicit geometry defaults must not move a byte"
    );
    let json = implicit.to_json();
    for key in [
        "\"ways\"",
        "\"replacement\"",
        "\"l2_cache_bytes\"",
        "\"l2_ways\"",
        "sleep_fraction_l2",
        "lt_years_l2",
    ] {
        assert!(
            !json.contains(key),
            "{key} must be absent from a single-level ways=1 report"
        );
    }
}

/// Per-level sleep fractions stay within physical bounds across an
/// L1+L2 grid, and the L2 aging metrics ride along well-formed.
#[test]
fn per_level_sleep_fractions_are_sane() {
    let report = run(StudySpec::new("hierarchy sanity")
        .cache_kb([16])
        .line_bytes([16])
        .banks([4])
        .ways([1, 4])
        .l2_cache_kb([64])
        .l2_ways([4])
        .policies(["identity"])
        .workload_names(["dijkstra", "mad"])
        .expect("suite workloads resolve")
        .trace_cycles(80_000));
    assert_eq!(report.records().len(), 4);
    for r in report.records() {
        let lo = r
            .sleep_fractions
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = r.sleep_fractions.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            0.0 <= lo && hi <= 1.0,
            "L1 sleep fractions out of [0,1]: {:?}",
            r.sleep_fractions
        );
        let l2 = r.metric("sleep_fraction_l2").expect("L2 metric present");
        assert!(
            (0.0..=1.0).contains(&l2),
            "L2 sleep fraction out of [0,1]: {l2}"
        );
        let lt2 = r.metric("lt_years_l2").expect("L2 lifetime present");
        assert!(
            lt2.is_finite() && lt2 > 0.0,
            "L2 lifetime implausible: {lt2}"
        );
    }
}

/// Acceptance pin: behind a 4-way L1, the L2 sees only the miss stream,
/// so its banks idle — and sleep — strictly more than the L1's on the
/// pinned dijkstra workload, and its NBTI lifetime is no shorter.
#[test]
fn l2_sleeps_strictly_more_than_l1_behind_a_4way_filter() {
    let report = run(StudySpec::new("induced L2 recovery")
        .cache_kb([16])
        .line_bytes([16])
        .banks([4])
        .ways([4])
        .l2_cache_kb([64])
        .l2_ways([4])
        .policies(["identity"])
        .workload_names(["dijkstra"])
        .expect("suite workload resolves")
        .trace_cycles(160_000));
    assert_eq!(report.records().len(), 1);
    let r = &report.records()[0];
    let l1_avg = r.sleep_fractions.iter().sum::<f64>() / r.sleep_fractions.len() as f64;
    let l2_avg = r.metric("sleep_fraction_l2").expect("L2 metric present");
    assert!(
        l2_avg > l1_avg,
        "the L1 filter must induce more L2 sleep: L2 {l2_avg} vs L1 {l1_avg}"
    );
    let (lt1, lt2) = (r.lt_years(), r.metric("lt_years_l2").unwrap());
    assert!(
        lt2 >= lt1,
        "a sleepier L2 must not age faster than the L1: {lt2} vs {lt1}"
    );
}
