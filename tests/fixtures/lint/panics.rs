//! Fixture: panic-hygiene violations (`no-panic-in-lib`).
//!
//! Not compiled — lexed by the golden test. Every construct the rule
//! matches appears once, plus one suppressed site and one test module
//! the rule must skip.

pub fn first(xs: &[u32]) -> u32 {
    xs[0]
}

pub fn parse(s: &str) -> u32 {
    s.parse().unwrap()
}

pub fn named(s: &str) -> u32 {
    s.parse().expect("a number")
}

pub fn unreachable_branch(flag: bool) -> u32 {
    if flag {
        1
    } else {
        panic!("flag must be set")
    }
}

pub fn not_yet() {
    todo!()
}

pub fn later() {
    unimplemented!()
}

pub fn suppressed(xs: &[u32]) -> u32 {
    // aging-lint: allow(no-panic-in-lib) fixture: index provably in bounds
    xs[0]
}

// The string below must not fool the lexer: "xs[0].unwrap()" is text.
pub const DOC: &str = "call xs[0].unwrap() at your peril";

#[cfg(test)]
mod tests {
    #[test]
    fn panics_are_fine_in_tests() {
        let xs = [1u32];
        assert_eq!(xs[0], xs[0]);
        "7".parse::<u32>().unwrap();
    }
}
