//! Fixture: registry/doc coherence (`registry-doc-coherence`).
//!
//! Not compiled — lexed by the golden test against
//! `registry.md` standing in for DESIGN.md: every built-in key string
//! registered here must appear in that document.

pub fn install(reg: &mut Registry) {
    reg.register_fn("probing", || Probing::new());
    reg.register_fn("warp-drive", || WarpDrive::new());
}

pub fn keys() {
    ModelKey::parse("nbti-45nm");
    ModelKey::parse("tachyon-7nm");
}
