//! Fixture: environment reads (`no-env-in-core`).
//!
//! Not compiled — lexed by the golden test. Core results must be a
//! function of the spec alone; only binaries may read the ambient
//! environment.

use std::env;

pub fn threads() -> usize {
    std::env::var("STUDY_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

pub fn cache_dir() -> Option<String> {
    env::var("CACHE_DIR").ok()
}

pub fn allowed() -> Option<String> {
    env::var("UPDATE_GOLDENS").ok() // aging-lint: allow(no-env-in-core) fixture: golden regen switch
}
