//! Fixture: wall-clock reads (`no-wallclock`).
//!
//! Not compiled — lexed by the golden test. Wall-clock time poisons
//! byte-determinism: two identical runs disagree.

pub fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

pub fn mark() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn imported() -> Instant {
    Instant::now()
}

pub fn allowed() -> Instant {
    Instant::now() // aging-lint: allow(no-wallclock) fixture: bench harness timing
}
