//! Fixture: unordered containers (`no-unordered-iter`).
//!
//! Not compiled — lexed by the golden test. `HashMap`/`HashSet`
//! iteration order is randomized per process; anything feeding output
//! or fingerprints must use a `BTreeMap`/`BTreeSet` instead. The
//! `use` line itself is exempt — only mentions in code count.

use std::collections::{HashMap, HashSet};

pub struct Index {
    by_name: HashMap<String, usize>,
}

pub fn distinct(keys: &[String]) -> usize {
    let set: HashSet<&String> = keys.iter().collect();
    set.len()
}

// aging-lint: allow(no-unordered-iter) fixture: scratch map, never iterated
pub fn scratch() -> HashMap<String, usize> {
    Default::default()
}
