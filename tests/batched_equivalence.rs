//! Byte-equality of the batched fast path against the per-access
//! reference, on every built-in workload — the contract that lets the
//! study pipeline stream batches without changing a single published
//! number.

use nbti_cache_repro::arch::arch::{PartitionedCache, UpdateSchedule};
use nbti_cache_repro::arch::PolicyRegistry;
use nbti_cache_repro::sim::{CacheGeometry, SimOutcome};
use nbti_cache_repro::traces::formats::{write_csv, write_din, write_lackey, TraceFormat};
use nbti_cache_repro::traces::suite;

const CYCLES: usize = 30_000;

fn arch(policy: &str, banks: u32) -> PartitionedCache {
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, banks).unwrap();
    PartitionedCache::new_named(geom, policy, PolicyRegistry::builtin()).unwrap()
}

fn assert_identical(a: &SimOutcome, b: &SimOutcome, context: &str) {
    assert_eq!(a, b, "{context}: outcomes diverged");
    // PartialEq on f64 is what the report serializer sees; make the
    // bitwise claim explicit for the energy accumulators too.
    for (x, y) in [
        (a.energy.dynamic_fj, b.energy.dynamic_fj),
        (a.energy.leakage_fj, b.energy.leakage_fj),
        (a.energy.wake_fj, b.energy.wake_fj),
        (a.energy.overhead_fj, b.energy.overhead_fj),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: energy bits diverged");
    }
}

#[test]
fn batched_equals_per_access_on_every_builtin_workload() {
    let cache = arch("identity", 4);
    for profile in suite::mediabench() {
        let scalar = cache
            .simulate(profile.trace(1000).take(CYCLES), UpdateSchedule::Never)
            .unwrap();
        let batched = cache
            .simulate_batched(profile.trace(1000).take(CYCLES), UpdateSchedule::Never)
            .unwrap();
        assert_identical(&scalar, &batched, profile.name());
    }
}

#[test]
fn batched_equals_per_access_under_updates() {
    // Mid-trace mapping updates exercise batch clipping at schedule
    // boundaries (including a period that is not a batch multiple).
    let profile = suite::by_name("CRC32").unwrap();
    for (policy, period) in [("probing", 7_000), ("scrambling", 4096), ("gray", 9_999)] {
        let cache = arch(policy, 4);
        let schedule = UpdateSchedule::EveryCycles(period);
        let scalar = cache
            .simulate(profile.trace(5).take(CYCLES), schedule)
            .unwrap();
        let batched = cache
            .simulate_batched(profile.trace(5).take(CYCLES), schedule)
            .unwrap();
        assert_eq!(scalar.updates, (CYCLES as u64) / period);
        assert_identical(&scalar, &batched, &format!("{policy}/{period}"));
    }
}

#[test]
fn file_backed_sources_match_the_in_memory_stream() {
    // The same accesses, replayed from each on-disk format through the
    // streaming reader, must land on the per-access reference exactly.
    let profile = suite::by_name("dijkstra").unwrap();
    let accesses: Vec<_> = profile.trace(3).take(20_000).collect();
    let cache = arch("identity", 4);
    let reference = cache
        .simulate(accesses.iter().copied(), UpdateSchedule::Never)
        .unwrap();

    let dir = std::env::temp_dir().join("nbti-batched-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    for format in TraceFormat::ALL {
        let mut text = String::new();
        match format {
            TraceFormat::Din => write_din(&mut text, &accesses),
            TraceFormat::Lackey => write_lackey(&mut text, &accesses),
            TraceFormat::Csv => write_csv(&mut text, &accesses),
        }
        let path = dir.join(format!("t.{format}"));
        std::fs::write(&path, &text).unwrap();
        let mut source = nbti_cache_repro::traces::formats::open_path(format, &path).unwrap();
        let from_file = cache
            .simulate_source(source.as_mut(), None, UpdateSchedule::Never)
            .unwrap();
        assert_identical(&reference, &from_file, format.key());
    }
}
