//! Byte-equality of the batched fast path against the per-access
//! reference, on every built-in workload — the contract that lets the
//! study pipeline stream batches without changing a single published
//! number.

use nbti_cache_repro::arch::arch::{PartitionedCache, UpdateSchedule};
use nbti_cache_repro::arch::PolicyRegistry;
use nbti_cache_repro::sim::{
    CacheGeometry, CacheHierarchy, IdentityMapping, SimConfig, SimOutcome, Simulator,
};
use nbti_cache_repro::traces::formats::{write_csv, write_din, write_lackey, TraceFormat};
use nbti_cache_repro::traces::suite;

const CYCLES: usize = 30_000;

fn arch(policy: &str, banks: u32) -> PartitionedCache {
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, banks).unwrap();
    PartitionedCache::new_named(geom, policy, PolicyRegistry::builtin()).unwrap()
}

fn assert_identical(a: &SimOutcome, b: &SimOutcome, context: &str) {
    assert_eq!(a, b, "{context}: outcomes diverged");
    // PartialEq on f64 is what the report serializer sees; make the
    // bitwise claim explicit for the energy accumulators too.
    for (x, y) in [
        (a.energy.dynamic_fj, b.energy.dynamic_fj),
        (a.energy.leakage_fj, b.energy.leakage_fj),
        (a.energy.wake_fj, b.energy.wake_fj),
        (a.energy.overhead_fj, b.energy.overhead_fj),
    ] {
        assert_eq!(x.to_bits(), y.to_bits(), "{context}: energy bits diverged");
    }
}

#[test]
fn batched_equals_per_access_on_every_builtin_workload() {
    let cache = arch("identity", 4);
    for profile in suite::mediabench() {
        let scalar = cache
            .simulate(profile.trace(1000).take(CYCLES), UpdateSchedule::Never)
            .unwrap();
        let batched = cache
            .simulate_batched(profile.trace(1000).take(CYCLES), UpdateSchedule::Never)
            .unwrap();
        assert_identical(&scalar, &batched, profile.name());
    }
}

#[test]
fn batched_equals_per_access_under_updates() {
    // Mid-trace mapping updates exercise batch clipping at schedule
    // boundaries (including a period that is not a batch multiple).
    let profile = suite::by_name("CRC32").unwrap();
    for (policy, period) in [("probing", 7_000), ("scrambling", 4096), ("gray", 9_999)] {
        let cache = arch(policy, 4);
        let schedule = UpdateSchedule::EveryCycles(period);
        let scalar = cache
            .simulate(profile.trace(5).take(CYCLES), schedule)
            .unwrap();
        let batched = cache
            .simulate_batched(profile.trace(5).take(CYCLES), schedule)
            .unwrap();
        assert_eq!(scalar.updates, (CYCLES as u64) / period);
        assert_identical(&scalar, &batched, &format!("{policy}/{period}"));
    }
}

fn hierarchy(l1_ways: u32, l2_ways: u32) -> CacheHierarchy {
    let sim = |size: u64, ways: u32| {
        let geom = CacheGeometry::new(size, 16, ways, 4).unwrap();
        Simulator::new(SimConfig::new(geom).unwrap(), Box::new(IdentityMapping)).unwrap()
    };
    CacheHierarchy::new(sim(16 * 1024, l1_ways), sim(64 * 1024, l2_ways)).unwrap()
}

#[test]
fn hierarchy_batched_equals_per_access_on_both_levels() {
    // The two-level contract: batch sizes that are not miss-aligned
    // with anything (odd chunks included) produce the same bits on the
    // L1 *and* on the induced L2 miss stream as stepping one access at
    // a time.
    let profile = suite::by_name("dijkstra").unwrap();
    let accesses: Vec<_> = profile.trace(9).take(CYCLES).collect();
    for chunk in [1usize, 7, 997, 4096] {
        let mut scalar = hierarchy(4, 4);
        for &a in &accesses {
            scalar.step(a);
        }
        let scalar = scalar.finish();
        scalar.validate().unwrap();

        let mut batched = hierarchy(4, 4);
        for batch in accesses.chunks(chunk) {
            batched.step_batch(batch);
        }
        let batched = batched.finish();
        batched.validate().unwrap();

        assert_identical(&scalar.l1, &batched.l1, &format!("L1/chunk={chunk}"));
        assert_identical(&scalar.l2, &batched.l2, &format!("L2/chunk={chunk}"));
    }
}

#[test]
fn hierarchy_source_path_matches_the_scalar_composition() {
    // The study session drives hierarchies through the arch-level
    // `simulate_hierarchy_source` (batched, file- or stream-backed);
    // it must land bit-for-bit on the hand-composed scalar hierarchy.
    let profile = suite::by_name("CRC32").unwrap();
    let accesses: Vec<_> = profile.trace(13).take(CYCLES).collect();

    let mut scalar = hierarchy(2, 4);
    for &a in &accesses {
        scalar.step(a);
    }
    let scalar = scalar.finish();

    let dir = std::env::temp_dir().join("nbti-hierarchy-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    let mut text = String::new();
    write_din(&mut text, &accesses);
    let path = dir.join("t.din");
    std::fs::write(&path, &text).unwrap();

    let l1 = PartitionedCache::new_named(
        CacheGeometry::new(16 * 1024, 16, 2, 4).unwrap(),
        "identity",
        PolicyRegistry::builtin(),
    )
    .unwrap();
    let l2 = PartitionedCache::new_named(
        CacheGeometry::new(64 * 1024, 16, 4, 4).unwrap(),
        "identity",
        PolicyRegistry::builtin(),
    )
    .unwrap();
    let mut source = nbti_cache_repro::traces::formats::open_path(TraceFormat::Din, &path).unwrap();
    let from_source = l1
        .simulate_hierarchy_source(&l2, source.as_mut(), None, UpdateSchedule::Never)
        .unwrap();
    from_source.validate().unwrap();

    assert_identical(&scalar.l1, &from_source.l1, "L1/source");
    assert_identical(&scalar.l2, &from_source.l2, "L2/source");
}

#[test]
fn file_backed_sources_match_the_in_memory_stream() {
    // The same accesses, replayed from each on-disk format through the
    // streaming reader, must land on the per-access reference exactly.
    let profile = suite::by_name("dijkstra").unwrap();
    let accesses: Vec<_> = profile.trace(3).take(20_000).collect();
    let cache = arch("identity", 4);
    let reference = cache
        .simulate(accesses.iter().copied(), UpdateSchedule::Never)
        .unwrap();

    let dir = std::env::temp_dir().join("nbti-batched-equivalence");
    std::fs::create_dir_all(&dir).unwrap();
    for format in TraceFormat::ALL {
        let mut text = String::new();
        match format {
            TraceFormat::Din => write_din(&mut text, &accesses),
            TraceFormat::Lackey => write_lackey(&mut text, &accesses),
            TraceFormat::Csv => write_csv(&mut text, &accesses),
        }
        let path = dir.join(format!("t.{format}"));
        std::fs::write(&path, &text).unwrap();
        let mut source = nbti_cache_repro::traces::formats::open_path(format, &path).unwrap();
        let from_file = cache
            .simulate_source(source.as_mut(), None, UpdateSchedule::Never)
            .unwrap();
        assert_identical(&reference, &from_file, format.key());
    }
}
