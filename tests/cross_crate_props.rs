//! Property-based tests on cross-crate invariants (quickprop-driven).

use nbti_cache_repro::arch::aging::AgingAnalysis;
use nbti_cache_repro::arch::policy::PolicyKind;
use nbti_cache_repro::nbti::{CellDesign, LifetimeSolver};
use nbti_cache_repro::sim::{Access, CacheGeometry, IdentityMapping, SimConfig, Simulator};
use std::sync::OnceLock;

/// Calibration is expensive; share one solver across all property cases.
fn aging() -> &'static AgingAnalysis {
    static CELL: OnceLock<AgingAnalysis> = OnceLock::new();
    CELL.get_or_init(|| {
        AgingAnalysis::new(
            LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).expect("calibration"),
        )
    })
}

/// Fewer cases in debug builds keeps `cargo test --workspace` snappy.
const CASES: u32 = if cfg!(debug_assertions) { 6 } else { 24 };

/// Re-indexing never shortens cache lifetime, whatever the idleness
/// distribution.
#[test]
fn probing_never_hurts() {
    quickprop::cases(CASES, |g| {
        let sleep = g.vec_f64(0.0..1.0, 4);
        let a = aging();
        let lt0 = a.cache_lifetime(&sleep, 0.5, PolicyKind::Identity).unwrap();
        let lt = a.cache_lifetime(&sleep, 0.5, PolicyKind::Probing).unwrap();
        assert!(lt >= lt0 * 0.999, "lt {lt} < lt0 {lt0} for {sleep:?}");
    });
}

/// Cache lifetime under identity equals the minimum over per-bank
/// lifetimes (aging is a worst-case metric, paper §V).
#[test]
fn identity_lifetime_is_min_of_banks() {
    quickprop::cases(CASES, |g| {
        let sleep = g.vec_f64(0.0..0.999, 4);
        let a = aging();
        let cache = a.cache_lifetime(&sleep, 0.5, PolicyKind::Identity).unwrap();
        let min_bank = sleep
            .iter()
            .map(|&s| a.bank_lifetime(s, 0.5).unwrap())
            .fold(f64::INFINITY, f64::min);
        assert!(
            (cache - min_bank).abs() / min_bank < 0.01,
            "cache {cache} vs min bank {min_bank}"
        );
    });
}

/// More sleep on the *worst* bank never shortens identity lifetime.
#[test]
fn lifetime_monotone_in_worst_bank_sleep() {
    quickprop::cases(CASES, |g| {
        let base = g.f64_in(0.0..0.9);
        let extra = g.f64_in(0.0..0.09);
        let a = aging();
        let lt1 = a
            .cache_lifetime(&[base, 0.95, 0.95, 0.95], 0.5, PolicyKind::Identity)
            .unwrap();
        let lt2 = a
            .cache_lifetime(&[base + extra, 0.95, 0.95, 0.95], 0.5, PolicyKind::Identity)
            .unwrap();
        assert!(lt2 >= lt1 * 0.999);
    });
}

/// Geometry index split/recombine round-trips for arbitrary addresses.
#[test]
fn geometry_roundtrip() {
    quickprop::cases(CASES.max(32), |g| {
        let addr = g.u64_in(0..(1 << 30));
        let size_log = g.u32_in(13..16);
        let line_log = g.u32_in(4..6);
        let bank_log = g.u32_in(1..4);
        let geom =
            CacheGeometry::direct_mapped(1u64 << size_log, 1u32 << line_log, 1u32 << bank_log)
                .unwrap();
        let set = geom.set_of(addr);
        let bank = geom.bank_of_set(set);
        let slot = geom.slot_in_bank(set);
        assert_eq!(geom.set_from_bank_slot(bank, slot), set);
        assert!(bank < geom.banks());
        assert!(slot < geom.sets_per_bank());
    });
}

/// Simulation invariants hold for random short traces.
#[test]
fn simulation_invariants_on_random_traces() {
    quickprop::cases(CASES, |g| {
        let seed = g.u64_in(0..1000);
        let geom = CacheGeometry::direct_mapped(8 * 1024, 16, 4).unwrap();
        let mut sim =
            Simulator::new(SimConfig::new(geom).unwrap(), Box::new(IdentityMapping)).unwrap();
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        for _ in 0..5_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            sim.step(Access::read(x % (64 * 1024)));
        }
        let out = sim.finish();
        assert!(out.validate().is_ok(), "{:?}", out.validate());
        assert!(out.energy.total_fj() > 0.0);
        assert!(out.energy.total_fj() <= out.monolithic_baseline.total_fj());
    });
}
