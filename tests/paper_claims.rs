//! Integration: the paper's headline claims hold on the full pipeline.
//!
//! These tests run the complete stack — synthetic traces, banked cache
//! simulation, energy accounting, NBTI/SNM lifetime — at reduced trace
//! lengths and assert the paper's *qualitative* results: who wins, by
//! roughly what factor, and where the trends point.

use nbti_cache_repro::arch::experiment::{
    claims_from, run_suite, ExperimentConfig, ExperimentContext,
};

fn quick(kb: u64, banks: u32) -> ExperimentConfig {
    ExperimentConfig::paper_reference()
        .with_cache_kb(kb)
        .with_banks(banks)
        .with_trace_cycles(160_000)
}

fn ctx() -> ExperimentContext {
    ExperimentContext::new().expect("calibration")
}

#[test]
fn reindexing_beats_power_management_on_every_benchmark() {
    let ctx = ctx();
    let results = run_suite(&quick(16, 4), &ctx).expect("suite");
    assert_eq!(results.len(), 18);
    for r in &results {
        assert!(
            r.lt_years > r.lt0_years,
            "{}: LT {} must exceed LT0 {}",
            r.name,
            r.lt_years,
            r.lt0_years
        );
        assert!(
            r.lt0_years >= 2.93 * 0.999,
            "{}: LT0 {} can never fall below the monolithic cell",
            r.name,
            r.lt0_years
        );
    }
}

#[test]
fn esav_averages_match_paper_per_size() {
    // Paper Table II averages: 32.2 / 44.3 / 55.5 %.
    let ctx = ctx();
    let mut previous = 0.0;
    for (kb, paper) in [(8u64, 0.322), (16, 0.443), (32, 0.555)] {
        let results = run_suite(&quick(kb, 4), &ctx).expect("suite");
        let esav = results.iter().map(|r| r.esav).sum::<f64>() / results.len() as f64;
        assert!(
            (esav - paper).abs() < 0.05,
            "{kb} kB: Esav {esav:.3} should be near the paper's {paper}"
        );
        assert!(esav > previous, "Esav must grow with cache size");
        previous = esav;
    }
}

#[test]
fn lifetime_grows_with_bank_count() {
    // Paper Table IV: both idleness and lifetime increase with M.
    let ctx = ctx();
    let mut last_lt = 0.0;
    let mut last_idle = 0.0;
    for banks in [2u32, 4, 8] {
        let results = run_suite(&quick(16, banks), &ctx).expect("suite");
        let lt = results.iter().map(|r| r.lt_years).sum::<f64>() / results.len() as f64;
        let idle =
            results.iter().map(|r| r.avg_useful_idleness()).sum::<f64>() / results.len() as f64;
        assert!(lt > last_lt, "LT must grow with M: {lt} after {last_lt}");
        assert!(idle > last_idle, "idleness must grow with M");
        last_lt = lt;
        last_idle = idle;
    }
    // M = 8 reaches roughly 2x the monolithic cell (paper: "about 2x").
    assert!(
        last_lt / 2.93 > 1.7,
        "M=8 should approach the paper's ~2x: got {:.2}x",
        last_lt / 2.93
    );
}

#[test]
fn headline_claims_within_tolerance() {
    let ctx = ctx();
    let base = ExperimentConfig::paper_reference().with_trace_cycles(160_000);
    let data: Vec<(u64, _)> = [8u64, 16, 32]
        .iter()
        .map(|&kb| (kb, run_suite(&base.with_cache_kb(kb), &ctx).expect("suite")))
        .collect();
    let s = claims_from(&data);
    // Power management alone: paper says ~9 %; accept the single-digit
    // neighbourhood.
    assert!(
        (0.0..0.20).contains(&s.lt0_gain_8k),
        "LT0 gain {:.3} out of range",
        s.lt0_gain_8k
    );
    // Re-indexing adds a large further gain: paper ~38 %.
    assert!(
        (0.25..0.70).contains(&s.reindex_further_gain_8k),
        "re-index gain {:.3} out of range",
        s.reindex_further_gain_8k
    );
    // Per-size lifetime extension: paper 48/47/58 %.
    for (i, ext) in s.extension_per_size.iter().enumerate() {
        assert!(
            (0.30..0.75).contains(ext),
            "extension[{i}] = {ext:.3} out of range"
        );
    }
    // Best case approaches 2x; worst configuration still gains >= ~15 %.
    assert!(s.best_case.1 > 1.6, "best case {:.2}x", s.best_case.1);
    assert!(s.worst_case.1 > 1.1, "worst case {:.2}x", s.worst_case.1);
}

#[test]
fn line_size_halves_esav_but_not_lifetime() {
    // Paper Table III: Esav 44.3 -> 31.9 %, LT 4.31 -> 4.23 years.
    let ctx = ctx();
    let ls16 = run_suite(&quick(16, 4), &ctx).expect("suite");
    let cfg32 = quick(16, 4).with_line_bytes(32);
    let ls32 = run_suite(&cfg32, &ctx).expect("suite");
    let esav16 = ls16.iter().map(|r| r.esav).sum::<f64>() / 18.0;
    let esav32 = ls32.iter().map(|r| r.esav).sum::<f64>() / 18.0;
    let lt16 = ls16.iter().map(|r| r.lt_years).sum::<f64>() / 18.0;
    let lt32 = ls32.iter().map(|r| r.lt_years).sum::<f64>() / 18.0;
    assert!(
        esav32 < esav16 - 0.08,
        "bigger lines must cost energy saving: {esav16:.3} -> {esav32:.3}"
    );
    assert!(
        (lt16 - lt32).abs() / lt16 < 0.10,
        "lifetime is insensitive to line size: {lt16:.2} vs {lt32:.2}"
    );
}

#[test]
fn sha_is_a_standout_case() {
    // The paper singles out sha ("we obtain a 2x lifetime extension").
    let ctx = ctx();
    let results = run_suite(&quick(16, 4), &ctx).expect("suite");
    let sha = results.iter().find(|r| r.name == "sha").expect("sha");
    let gain = (sha.lt_years - sha.lt0_years) / sha.lt0_years;
    let avg_gain = results
        .iter()
        .map(|r| (r.lt_years - r.lt0_years) / r.lt0_years)
        .sum::<f64>()
        / 18.0;
    assert!(
        gain > avg_gain,
        "sha's re-indexing gain ({gain:.2}) should beat the average ({avg_gain:.2})"
    );
}
