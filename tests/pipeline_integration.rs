//! Integration: conservation invariants and cross-crate agreements over
//! the full trace → simulation → aging pipeline.

use nbti_cache_repro::arch::arch::{PartitionedCache, UpdateSchedule};
use nbti_cache_repro::arch::policy::PolicyKind;
use nbti_cache_repro::nbti::{AgingLut, CellDesign, LifetimeSolver, SleepMode, StressProfile};
use nbti_cache_repro::sim::CacheGeometry;
use nbti_cache_repro::traces::suite;

#[test]
fn every_benchmark_outcome_is_internally_consistent() {
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
    for (i, p) in suite::mediabench().iter().enumerate() {
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).unwrap();
        let out = arch
            .simulate(p.trace(50 + i as u64).take(120_000), UpdateSchedule::Never)
            .unwrap();
        out.validate()
            .unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert_eq!(out.accesses, 120_000, "{}", p.name());
        assert!(out.miss_rate() < 0.5, "{}: miss rate implausible", p.name());
        // Sleep is always a subset of useful idleness.
        for b in 0..4 {
            assert!(
                out.sleep_fraction(b) <= out.useful_idleness(b) + 1e-9,
                "{}: bank {b} sleeps more than its useful idleness",
                p.name()
            );
        }
    }
}

#[test]
fn partitioned_energy_beats_monolithic_on_all_benchmarks() {
    let geom = CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
    for p in suite::mediabench() {
        let arch = PartitionedCache::new(geom, PolicyKind::Identity).unwrap();
        let out = arch
            .simulate(p.trace(7).take(100_000), UpdateSchedule::Never)
            .unwrap();
        assert!(
            out.energy.total_fj() < out.monolithic_baseline.total_fj(),
            "{}: partitioning must save energy",
            p.name()
        );
        let esav = out.energy_saving();
        assert!(
            (0.30..0.60).contains(&esav),
            "{}: Esav {esav:.3} outside the plausible band",
            p.name()
        );
    }
}

#[test]
fn lut_agrees_with_direct_lifetime_solve_across_the_grid() {
    let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap();
    let lut = AgingLut::build(&solver, SleepMode::VoltageScaled, 13, 13, 500.0).unwrap();
    for p0 in [0.1, 0.35, 0.5, 0.78] {
        for s in [0.0, 0.27, 0.55, 0.93] {
            let direct = solver
                .lifetime_years(&StressProfile::new(p0, s, SleepMode::VoltageScaled).unwrap())
                .unwrap();
            let interp = lut.lifetime_years(p0, s).unwrap();
            let rel = (direct - interp).abs() / direct;
            assert!(rel < 0.05, "LUT mismatch at ({p0}, {s}): {rel:.4}");
        }
    }
}

#[test]
fn miss_rate_is_policy_invariant_and_update_cost_is_bounded() {
    let geom = CacheGeometry::direct_mapped(8 * 1024, 16, 4).unwrap();
    let p = suite::by_name("lame").unwrap();
    let mut baseline_misses = None;
    for kind in PolicyKind::ALL {
        let arch = PartitionedCache::new(geom, kind).unwrap();
        let out = arch
            .simulate(p.trace(11).take(80_000), UpdateSchedule::Never)
            .unwrap();
        match baseline_misses {
            None => baseline_misses = Some(out.misses),
            Some(m) => assert_eq!(out.misses, m, "{}", kind.name()),
        }
    }
    // Updating once per 20k cycles costs at most 4 refills of the cache.
    let arch = PartitionedCache::new(geom, PolicyKind::Probing).unwrap();
    let updated = arch
        .simulate(
            p.trace(11).take(80_000),
            UpdateSchedule::EveryCycles(20_000),
        )
        .unwrap();
    let lines = geom.lines();
    assert!(updated.misses <= baseline_misses.unwrap() + updated.updates * lines);
}

#[test]
fn aging_pipeline_matches_closed_form_for_linear_rates() {
    // Under voltage scaling the stress rate is linear in the sleep
    // fraction, so probing's rotation average has a closed form:
    // LT = LT_cell / mean(m(S_i)).
    let solver = LifetimeSolver::calibrated(CellDesign::default_45nm(), 2.93).unwrap();
    let r_v = solver.rd().voltage_acceleration(solver.design().vdd_low());
    let aging = nbti_cache_repro::arch::aging::AgingAnalysis::new(solver);
    let sleep = [0.9, 0.7, 0.2, 0.05];
    let lt = aging
        .cache_lifetime(&sleep, 0.5, PolicyKind::Probing)
        .unwrap();
    let mean_m = sleep.iter().map(|s| (1.0 - s) + s * r_v).sum::<f64>() / 4.0;
    let closed_form = 2.93 / mean_m;
    assert!(
        (lt - closed_form).abs() / closed_form < 0.02,
        "pipeline {lt:.3} vs closed form {closed_form:.3}"
    );
}

#[test]
fn facade_reexports_compose() {
    // The root crate's façade must expose a coherent API surface.
    use nbti_cache_repro::{arch, nbti, power, sim, traces};
    let _ = nbti::CellDesign::default_45nm();
    let _ = power::Technology::default_45nm();
    let geom = sim::CacheGeometry::direct_mapped(16 * 1024, 16, 4).unwrap();
    let _ = traces::suite::mediabench();
    let _ = arch::PartitionedCache::new(geom, arch::PolicyKind::Probing).unwrap();
}
