//! Byte-pinned golden diagnostics for every lint rule, plus the
//! workspace self-lint gate.
//!
//! Each fixture under `tests/fixtures/lint/` is a deliberately bad
//! source file (never compiled — only lexed); its `.expected` twin
//! pins the exact `file:line:col: severity[rule-id]: message` output.
//! Regenerate after an intentional rule change with:
//!
//! ```sh
//! UPDATE_GOLDENS=1 cargo test --test lint_goldens
//! ```

use aging_lint::{lint_source, lint_workspace, Severity};

/// (fixture, rule that must fire, design doc for the coherence rule).
const FIXTURES: &[(&str, &str, Option<&str>)] = &[
    ("panics.rs", "no-panic-in-lib", None),
    ("wallclock.rs", "no-wallclock", None),
    ("unordered.rs", "no-unordered-iter", None),
    ("envread.rs", "no-env-in-core", None),
    ("registry.rs", "registry-doc-coherence", Some("registry.md")),
];

fn fixture_path(name: &str) -> String {
    format!("{}/tests/fixtures/lint/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn read(name: &str) -> String {
    std::fs::read_to_string(fixture_path(name))
        .unwrap_or_else(|e| panic!("read fixture {name}: {e}"))
}

fn rendered_diagnostics(fixture: &str, doc: Option<&str>) -> String {
    let source = read(fixture);
    let doc_text = doc.map(read);
    let mut out = String::new();
    for diag in lint_source(fixture, &source, doc_text.as_deref()) {
        out.push_str(&diag.to_string());
        out.push('\n');
    }
    out
}

#[test]
fn fixture_diagnostics_match_goldens() {
    for (fixture, rule, doc) in FIXTURES {
        let rendered = rendered_diagnostics(fixture, *doc);
        let golden = format!("{}.expected", fixture.trim_end_matches(".rs"));
        if std::env::var_os("UPDATE_GOLDENS").is_some() {
            std::fs::write(fixture_path(&golden), &rendered)
                .unwrap_or_else(|e| panic!("write golden {golden}: {e}"));
            continue;
        }
        let expected = read(&golden);
        assert_eq!(
            rendered, expected,
            "lint output for {fixture} diverged from {golden} \
             (UPDATE_GOLDENS=1 regenerates after an intentional rule change)"
        );
        assert!(
            rendered.contains(&format!("[{rule}]")),
            "{fixture} must trip its own rule `{rule}`:\n{rendered}"
        );
    }
}

/// Every fixture carries at least one *error* — the lint binary exits
/// nonzero on each of them (CI runs the binary itself as well).
#[test]
fn every_fixture_has_an_error() {
    for (fixture, _, doc) in FIXTURES {
        let source = read(fixture);
        let doc_text = doc.map(read);
        let diags = lint_source(fixture, &source, doc_text.as_deref());
        assert!(
            diags.iter().any(|d| d.severity == Severity::Error),
            "{fixture} produced no error diagnostics"
        );
    }
}

/// Suppression pragmas in the fixtures actually suppress: no
/// diagnostic lands on a line the fixture marked as allowed.
#[test]
fn fixture_pragmas_suppress() {
    // panics.rs line 36 (`xs[0]` under a standalone pragma),
    // wallclock.rs line 19 (trailing pragma) must stay clean.
    let clean: &[(&str, u32)] = &[
        ("panics.rs", 36),
        ("wallclock.rs", 19),
        ("unordered.rs", 20),
        ("envread.rs", 21),
    ];
    for (fixture, line) in clean {
        let diags = lint_source(fixture, &read(fixture), None);
        assert!(
            diags.iter().all(|d| d.line != *line),
            "{fixture}:{line} is pragma-suppressed but still fired"
        );
    }
}

/// The self-lint gate: the workspace's own library code is clean under
/// its zone rules. This is the tier-1 teeth behind the panic-hygiene
/// and determinism burn-down — a regression anywhere in
/// `crates/*/src` fails this test with a `file:line:col` pointer.
#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let diags = lint_workspace(root).expect("workspace lint walk");
    assert!(
        diags.is_empty(),
        "workspace lint found {} diagnostic(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
