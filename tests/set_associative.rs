//! The geometry axis, end to end: set-associative ways driven through
//! `StudySpec::ways()` instead of hand-built `PartitionedCache`s.
//!
//! These are the historic set-associative physical pins (conflict-miss
//! reduction under banking, a full pipeline run on a 4-way geometry)
//! migrated onto the studied axis, plus the replacement axis: an
//! explicit `"lru"` must be byte-identical to the default, and `"mru"`
//! must actually change the physics.
//!
//! One assertion stays at the arch layer on purpose:
//! `fixed_bijections_preserve_associative_miss_rates` proves that
//! re-indexing policies never change miss counts — the fact that lets
//! the study session memoize simulations *without* the policy in the
//! key. It cannot be expressed through the study layer precisely
//! because the study layer already relies on it.

use nbti_cache_repro::arch::arch::{PartitionedCache, UpdateSchedule};
use nbti_cache_repro::arch::model::ModelContext;
use nbti_cache_repro::arch::study::{StudyReport, StudySpec};
use nbti_cache_repro::arch::PolicyRegistry;
use nbti_cache_repro::sim::CacheGeometry;
use nbti_cache_repro::traces::suite;

fn run(spec: StudySpec) -> StudyReport {
    spec.run(&ModelContext::new()).expect("study runs")
}

#[test]
fn set_associative_pipeline_end_to_end() {
    // A 4-way 16 KB cache through the whole pipeline: trace →
    // banked simulation → aging model → lifetime + energy.
    let report = run(StudySpec::new("4-way pipeline")
        .cache_kb([16])
        .line_bytes([16])
        .banks([4])
        .ways([4])
        .policies(["probing"])
        .workload_names(["ispell"])
        .expect("suite workload resolves")
        .trace_cycles(160_000));
    assert_eq!(report.records().len(), 1);
    let r = &report.records()[0];
    assert_eq!(r.scenario.ways, 4);
    assert_eq!(r.sim_cycles, 160_000);
    assert!(
        r.miss_rate < 0.5,
        "4-way miss rate implausible: {}",
        r.miss_rate
    );
    for (b, s) in r.sleep_fractions.iter().enumerate() {
        assert!(
            (0.0..=1.0).contains(s),
            "bank {b} sleep fraction out of range: {s}"
        );
    }
    assert!(
        r.lt_years() > r.lt0_years(),
        "re-indexing must help associative caches too: {} vs {}",
        r.lt_years(),
        r.lt0_years()
    );
    assert!(
        r.esav > 0.2,
        "banked 4-way cache must save energy: Esav = {}",
        r.esav
    );
}

#[test]
fn associativity_reduces_conflict_misses_under_banking() {
    // Same capacity, same banking, more ways: conflict misses drop on
    // a pointer-chasing workload. The ways axis expands inside one
    // spec, so all three points share the trace seed by construction.
    let report = run(StudySpec::new("ways sweep")
        .cache_kb([16])
        .line_bytes([16])
        .banks([4])
        .ways([1, 2, 4])
        .policies(["identity"])
        .workload_names(["dijkstra"])
        .expect("suite workload resolves")
        .trace_cycles(160_000));
    assert_eq!(report.records().len(), 3);
    let rate = |ways: u32| -> f64 {
        report
            .records()
            .iter()
            .find(|r| r.scenario.ways == ways)
            .unwrap_or_else(|| panic!("no record for ways={ways}"))
            .miss_rate
    };
    assert!(
        rate(2) <= rate(1),
        "2-way must not conflict more than direct-mapped: {} vs {}",
        rate(2),
        rate(1)
    );
    assert!(
        rate(4) < rate(1),
        "4-way should miss less than direct-mapped: {} vs {}",
        rate(4),
        rate(1)
    );
}

#[test]
fn explicit_lru_is_byte_identical_to_the_default() {
    // `"lru"` is the default replacement: naming it must not move a
    // byte — same scenario ids, same JSON (the codec omits the field
    // at its default, so old readers see the old shape).
    let spec = || {
        StudySpec::new("geometry defaults")
            .cache_kb([8])
            .line_bytes([32])
            .banks([4])
            .ways([2])
            .policies(["identity"])
            .workload_names(["mad"])
            .expect("suite workload resolves")
            .trace_cycles(100_000)
    };
    let default = run(spec());
    let named = run(spec().replacement(["lru"]));
    assert_eq!(
        default.to_json(),
        named.to_json(),
        "an explicit \"lru\" must be byte-identical to the default"
    );
    assert!(
        !default.to_json().contains("\"replacement\""),
        "the default replacement must be omitted from the JSON"
    );
}

#[test]
fn mru_replacement_changes_the_physics() {
    // The replacement axis is not decorative: MRU victimizes the hot
    // way and must produce a different (worse) miss rate than LRU on
    // an associative geometry.
    let report = run(StudySpec::new("replacement sweep")
        .cache_kb([8])
        .line_bytes([16])
        .banks([4])
        .ways([4])
        .replacement(["lru", "mru"])
        .policies(["identity"])
        .workload_names(["dijkstra"])
        .expect("suite workload resolves")
        .trace_cycles(160_000));
    assert_eq!(report.records().len(), 2);
    let rate = |name: &str| -> f64 {
        report
            .records()
            .iter()
            .find(|r| r.scenario.replacement == name)
            .unwrap_or_else(|| panic!("no record for replacement={name}"))
            .miss_rate
    };
    assert!(
        rate("mru") > rate("lru"),
        "MRU must conflict more than LRU on dijkstra: {} vs {}",
        rate("mru"),
        rate("lru")
    );
}

#[test]
fn fixed_bijections_preserve_associative_miss_rates() {
    // Every re-indexing policy is a bijection on set indices, so with
    // a fixed mapping the conflict structure — and the miss count —
    // is identical across policies. This is the physical fact that
    // lets the study session share one simulation across the policy
    // axis (the memo key has no policy in it), so it stays pinned at
    // the arch layer, below the machinery that depends on it.
    let geom = CacheGeometry::new(8 * 1024, 32, 2, 4).unwrap();
    let registry = PolicyRegistry::builtin();
    let profile = suite::by_name("mad").unwrap();
    let mut baseline = None;
    for name in registry.names() {
        let arch = PartitionedCache::new_named(geom, &name, registry.clone()).unwrap();
        let out = arch
            .simulate_batched(profile.trace(4).take(100_000), UpdateSchedule::Never)
            .unwrap();
        match baseline {
            None => baseline = Some(out.misses),
            Some(m) => assert_eq!(out.misses, m, "{name}: bijection changed miss count"),
        }
    }
}
