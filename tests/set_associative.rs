//! Generality check: the paper presents the architecture on a
//! direct-mapped cache, but nothing in the scheme depends on
//! direct-mapping — the bank select works on *set* index bits. These
//! tests run the full pipeline on set-associative geometries, entirely
//! through the registry API (no legacy `PolicyKind`).

use nbti_cache_repro::arch::arch::{PartitionedCache, UpdateSchedule};
use nbti_cache_repro::arch::experiment::ExperimentContext;
use nbti_cache_repro::arch::PolicyRegistry;
use nbti_cache_repro::sim::CacheGeometry;
use nbti_cache_repro::traces::suite;

fn arch(geom: CacheGeometry, policy: &str) -> PartitionedCache {
    PartitionedCache::new_named(geom, policy, PolicyRegistry::builtin()).unwrap()
}

#[test]
fn set_associative_pipeline_end_to_end() {
    let ctx = ExperimentContext::new().unwrap();
    let geom = CacheGeometry::new(16 * 1024, 16, 4, 4).unwrap(); // 4-way
    let profile = suite::by_name("ispell").unwrap();
    let out = arch(geom, "identity")
        .simulate_batched(profile.trace(21).take(160_000), UpdateSchedule::Never)
        .unwrap();
    out.validate().unwrap();
    let sleep = out.sleep_fraction_all();
    let lt0 = ctx
        .aging
        .cache_lifetime_named(&sleep, 0.5, "identity", 1)
        .unwrap();
    let lt = ctx
        .aging
        .cache_lifetime_named(&sleep, 0.5, "probing", 1)
        .unwrap();
    assert!(lt > lt0, "re-indexing must help associative caches too");
    assert!(out.energy_saving() > 0.2);
}

#[test]
fn associativity_reduces_conflict_misses_under_banking() {
    let profile = suite::by_name("dijkstra").unwrap();
    let mut rates = Vec::new();
    for ways in [1u32, 2, 4] {
        let geom = CacheGeometry::new(16 * 1024, 16, ways, 4).unwrap();
        let out = arch(geom, "identity")
            .simulate_batched(profile.trace(8).take(160_000), UpdateSchedule::Never)
            .unwrap();
        out.validate().unwrap();
        rates.push(out.miss_rate());
    }
    assert!(
        rates[2] < rates[0],
        "4-way should miss less than direct-mapped: {rates:?}"
    );
}

#[test]
fn policies_preserve_associative_miss_rates() {
    let geom = CacheGeometry::new(8 * 1024, 32, 2, 4).unwrap();
    let profile = suite::by_name("mad").unwrap();
    let registry = PolicyRegistry::builtin();
    let mut misses = Vec::new();
    for name in registry.names() {
        let cache = PartitionedCache::new_named(geom, &name, registry.clone()).unwrap();
        let out = cache
            .simulate_batched(profile.trace(4).take(100_000), UpdateSchedule::Never)
            .unwrap();
        misses.push(out.misses);
    }
    assert!(
        misses.windows(2).all(|w| w[0] == w[1]),
        "every fixed bijection must see identical conflicts: {misses:?}"
    );
}
