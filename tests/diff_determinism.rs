//! Regression pin for the analysis layer's insertion-order freedom.
//!
//! `ReportDiff::between` used to index the right-hand report in a
//! hash map; the rendered diff was correct but its construction
//! walked buckets in hash order, which is randomized per process.
//! The index is a `BTreeMap` now, and this test pins the contract:
//! the rendered diff is **byte-identical** no matter how the right
//! report's records are ordered.

use nbti_cache_repro::arch::analysis::ReportDiff;
use nbti_cache_repro::arch::model::ModelContext;
use nbti_cache_repro::arch::study::{StudyReport, StudySpec};

/// A small grid with zero trace simulation: the pinned idleness
/// profile (4 sleep fractions ⇒ banks locked at 4) feeds the model
/// directly.
fn small_report() -> StudyReport {
    let ctx = ModelContext::new();
    StudySpec::new("diff determinism")
        .workload_names(["profile:0.9,0.5,0.2,0.8"])
        .expect("profile key resolves")
        .policies(["identity", "probing", "scrambling", "gray", "rotate-xor"])
        .banks([4])
        .run(&ctx)
        .expect("study runs")
}

#[test]
fn report_diff_is_insertion_order_free() {
    let left = small_report();
    // Right side: drop one scenario (→ "only in left"), perturb one
    // value (→ divergent), and append a duplicate (→ "only in right"),
    // so every section of the diff renders.
    let mut records = left.records().to_vec();
    let dropped = records.remove(1);
    records[0].esav += 0.25;
    records.push(records[2].clone());
    let _ = dropped;

    let mut shuffled = records.clone();
    shuffled.rotate_left(2);
    shuffled.reverse();
    assert_ne!(
        records.iter().map(|r| r.scenario.id).collect::<Vec<_>>(),
        shuffled.iter().map(|r| r.scenario.id).collect::<Vec<_>>(),
        "the shuffle must actually reorder"
    );

    let diff_a = ReportDiff::between(&left, &StudyReport::from_records("right", records), 0.0);
    let diff_b = ReportDiff::between(&left, &StudyReport::from_records("right", shuffled), 0.0);
    assert!(
        !diff_a.is_empty(),
        "the constructed diff must be nontrivial"
    );
    assert_eq!(
        diff_a.to_string(),
        diff_b.to_string(),
        "diff output must not depend on the right report's record order"
    );
}
