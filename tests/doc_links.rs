//! Link check over the documentation front door: every relative path
//! and internal anchor in README / DESIGN / EXPERIMENTS / ROADMAP must
//! resolve, so the docs cannot silently rot as files and headings move.
//!
//! External (`http(s)://`, `mailto:`) targets are skipped — CI runs
//! offline. Fenced code blocks are stripped before scanning, so shell
//! snippets containing `](` cannot produce false positives.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

const DOCS: [&str; 4] = ["README.md", "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"];

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// Drops fenced code blocks (``` … ```), keeping line structure.
fn strip_fences(text: &str) -> String {
    let mut out = String::new();
    let mut fenced = false;
    for line in text.lines() {
        if line.trim_start().starts_with("```") {
            fenced = !fenced;
            out.push('\n');
            continue;
        }
        if !fenced {
            out.push_str(line);
        }
        out.push('\n');
    }
    out
}

/// GitHub-style anchor slug of a heading: lowercase, spaces to
/// hyphens, everything but alphanumerics/hyphens/underscores dropped.
fn slug(heading: &str) -> String {
    heading
        .trim()
        .chars()
        .filter_map(|c| {
            if c.is_alphanumeric() || c == '_' || c == '-' {
                Some(c.to_ascii_lowercase())
            } else if c == ' ' {
                Some('-')
            } else {
                None
            }
        })
        .collect()
}

/// The anchor slugs of every `#`-heading in a markdown file.
fn anchors(text: &str) -> Vec<String> {
    strip_fences(text)
        .lines()
        .filter_map(|line| {
            let trimmed = line.trim_start();
            let level = trimmed.chars().take_while(|&c| c == '#').count();
            (1..=6)
                .contains(&level)
                .then(|| slug(trimmed[level..].trim_start()))
        })
        .collect()
}

/// Every `[text](target)` link target in a markdown file (code blocks
/// stripped), with its line number for error messages.
fn links(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    for (lineno, line) in strip_fences(text).lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i + 1 < bytes.len() {
            if bytes[i] == b']' && bytes[i + 1] == b'(' {
                if let Some(end) = line[i + 2..].find(')') {
                    out.push((lineno + 1, line[i + 2..i + 2 + end].to_string()));
                    i += 2 + end;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

#[test]
fn every_relative_link_and_anchor_resolves() {
    let root = repo_root();
    let sources: HashMap<&str, String> = DOCS
        .iter()
        .map(|doc| {
            (
                *doc,
                std::fs::read_to_string(root.join(doc)).unwrap_or_else(|e| {
                    panic!("{doc} must exist at the repo root: {e}");
                }),
            )
        })
        .collect();
    let mut failures = Vec::new();
    for doc in DOCS {
        for (lineno, target) in links(&sources[doc]) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
            {
                continue;
            }
            let (path_part, anchor) = match target.split_once('#') {
                Some((p, a)) => (p, Some(a)),
                None => (target.as_str(), None),
            };
            // Resolve the path side (empty = same file).
            let resolved: PathBuf = if path_part.is_empty() {
                root.join(doc)
            } else {
                root.join(path_part)
            };
            if !resolved.exists() {
                failures.push(format!(
                    "{doc}:{lineno}: link `{target}` points at a missing path"
                ));
                continue;
            }
            if let Some(anchor) = anchor {
                let Some(name) = resolved.file_name().and_then(|n| n.to_str()) else {
                    continue;
                };
                if !Path::new(name)
                    .extension()
                    .is_some_and(|e| e.eq_ignore_ascii_case("md"))
                {
                    continue; // anchors only checked in markdown targets
                }
                // Read the *resolved* target, never a same-named file
                // elsewhere (a nested README.md must not be checked
                // against the root one's headings).
                let text = std::fs::read_to_string(&resolved).expect("readable md");
                if !anchors(&text).iter().any(|a| a == anchor) {
                    failures.push(format!(
                        "{doc}:{lineno}: link `{target}` names an anchor `#{anchor}` \
                         with no matching heading in {name}"
                    ));
                }
            }
        }
    }
    assert!(failures.is_empty(), "\n{}", failures.join("\n"));
}

#[test]
fn the_docs_actually_contain_links_to_check() {
    // A silent regression in the link extractor would turn the check
    // above into a no-op; pin that the front door is cross-linked.
    let root = repo_root();
    let readme = std::fs::read_to_string(root.join("README.md")).unwrap();
    let found = links(&readme);
    assert!(
        found.iter().any(|(_, t)| t.starts_with("DESIGN.md"))
            && found.iter().any(|(_, t)| t.starts_with("EXPERIMENTS.md")),
        "README must link DESIGN.md and EXPERIMENTS.md, found: {found:?}"
    );
}

#[test]
fn slugging_matches_github_conventions() {
    assert_eq!(slug("The analysis layer"), "the-analysis-layer");
    assert_eq!(
        slug("Query and compare studies"),
        "query-and-compare-studies"
    );
    assert_eq!(
        slug("The Study API (`aging_cache`)"),
        "the-study-api-aging_cache"
    );
    assert_eq!(
        slug("Table IV — idleness / LT vs (size × banks)"),
        "table-iv--idleness--lt-vs-size--banks"
    );
}
